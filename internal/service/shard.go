// Process-sharded job execution: a job whose Spec.Shard is set fans
// out over N worker OS processes. The coordinator (runSharded) writes
// the worker spec and a read-only seed of the daemon's warm annotation
// cache to a work directory, execs one worker per shard, forwards each
// worker's NDJSON event stream into the job's sink (so progress and
// live fronts aggregate across processes), restarts crashed workers
// from their own shard checkpoints up to a bound, and finally merges
// the shard checkpoints through dse.MergeExploreContext — producing a
// report byte-identical to the unsharded run of the same spec. The
// workers' newly annotated components are merged back into the shared
// annotator, so later jobs warm-start from the whole fan-out's work.
//
// The worker side (ShardWorkerMain) is the same binary: cmd/ttadsed
// dispatches "-shard-worker" to it before flag parsing. A worker is an
// ordinary cancellable exploration with Config.Shard set; its product
// is its shard checkpoint file, its stdout is the event stream, and a
// non-zero exit tells the coordinator to restart it (the checkpoint
// makes the restart a resume, not a redo).
package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/jobspec"
	"repro/internal/obs"
	"repro/internal/testcost"
)

// DefaultMaxRestarts is how many times a crashed shard worker is
// restarted (and resumed from its checkpoint) when the spec leaves
// ShardSpec.MaxRestarts zero.
const DefaultMaxRestarts = 2

// shardCheckpointPath names shard i's checkpoint inside the work dir.
func shardCheckpointPath(dir, hash string, i, n int) string {
	return filepath.Join(dir, fmt.Sprintf("job-%s.shard%dof%d.ckpt", hash, i, n))
}

// shardCachePath names shard i's write-side annotation cache. The seed
// cache is read-shared; each worker writes its new annotations here and
// the coordinator unions them after the fan-out.
func shardCachePath(dir, hash string, i, n int) string {
	return filepath.Join(dir, fmt.Sprintf("job-%s.cache.shard%dof%d", hash, i, n))
}

// runSharded is the coordinator half of a sharded job. Called from the
// job goroutine with the running slot already held.
func (s *Server) runSharded(job *Job) {
	cfg, sel, err := dse.FromSpec(job.Spec)
	if err != nil {
		job.finish(StateFailed, err.Error(), nil)
		return
	}
	ann := s.annotator(&job.Spec)
	cfg.Obs = job.reg
	cfg.Inject = s.opts.Inject
	cfg.Annotator = ann
	cfg.EventSink = job.sink

	// With a CheckpointDir the shard files persist across daemon
	// restarts (resubmitting the spec resumes every worker); without
	// one they live in a temp dir for the fan-out's duration.
	workDir := s.opts.CheckpointDir
	if workDir == "" {
		tmp, err := os.MkdirTemp("", "ttadsed-shards-")
		if err != nil {
			job.finish(StateFailed, err.Error(), nil)
			return
		}
		defer os.RemoveAll(tmp)
		workDir = tmp
	}

	hash := job.Spec.Hash()
	n := job.Spec.Shard.Shards
	maxRestarts := job.Spec.Shard.MaxRestarts
	if maxRestarts == 0 {
		maxRestarts = DefaultMaxRestarts
	}

	// The worker spec is the job minus everything the coordinator owns:
	// the fan-out itself, cache and checkpoint paths (per-shard, passed
	// as flags) and the wall-clock bound (enforced here by killing the
	// workers through the context).
	wspec := job.Spec
	wspec.Shard = nil
	wspec.Cache = ""
	wspec.Checkpoint = ""
	wspec.Timeout = 0
	specPath := filepath.Join(workDir, "job-"+hash+".spec.json")
	if b, err := json.MarshalIndent(&wspec, "", "  "); err != nil {
		job.finish(StateFailed, err.Error(), nil)
		return
	} else if err := os.WriteFile(specPath, b, 0o644); err != nil {
		job.finish(StateFailed, err.Error(), nil)
		return
	}

	// Seed the workers with the daemon's warm annotations (read-only on
	// their side). Failure to write it only costs warmth, never the job.
	seedCache := filepath.Join(workDir, "job-"+hash+".cache.seed")
	if err := ann.SaveFile(seedCache); err != nil {
		s.reg.Counter("service.cache.save_errors").Inc()
		job.reg.Emit(obs.Event{Kind: "warning",
			Msg: fmt.Sprintf("shard seed cache not written: %v", err)})
		seedCache = ""
	}

	runCtx := job.ctx
	if job.Spec.Timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(job.ctx, job.Spec.Timeout.Std())
		defer cancel()
	}

	// Fan out: one supervisor goroutine per shard, each restarting its
	// worker from the shard checkpoint up to maxRestarts times.
	workersGauge := job.reg.Gauge("dse.shard.workers")
	var live atomic.Int64
	var seq atomic.Int64 // coordinator-stamped sequence over all workers
	werrs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ckpt := shardCheckpointPath(workDir, hash, i, n)
			cacheOut := shardCachePath(workDir, hash, i, n)
			for attempt := 0; ; attempt++ {
				workersGauge.Set(float64(live.Add(1)))
				err := s.runShardWorkerOnce(runCtx, job, &seq, specPath, seedCache, ckpt, cacheOut, i, n)
				workersGauge.Set(float64(live.Add(-1)))
				if err == nil {
					return
				}
				if runCtx.Err() != nil {
					werrs[i] = context.Cause(runCtx)
					return
				}
				if attempt >= maxRestarts {
					werrs[i] = err
					return
				}
				job.reg.Counter("dse.shard.restarts").Inc()
				job.sink(dse.Event{Kind: dse.EventWarning, Seq: seq.Add(1),
					Msg: fmt.Sprintf("shard %d/%d worker died (attempt %d of %d), resuming from its checkpoint: %v",
						i, n, attempt+1, maxRestarts+1, err)})
			}
		}(i)
	}
	wg.Wait()

	fail := func(msg string, report []byte) {
		st := terminalState(context.Cause(job.ctx))
		if st == StateFailed && runCtx.Err() != nil && job.ctx.Err() == nil {
			msg = fmt.Sprintf("job timeout %v exceeded: %s", job.Spec.Timeout.Std(), msg)
		}
		s.reg.Counter("service.jobs." + string(st)).Inc()
		job.finish(st, msg, report)
	}
	var failed []string
	for i, e := range werrs {
		if e != nil {
			failed = append(failed, fmt.Sprintf("shard %d/%d: %v", i, n, e))
		}
	}
	if len(failed) > 0 {
		fail(strings.Join(failed, "; "), nil)
		return
	}

	// Union the workers' new annotations into the shared annotator so
	// later jobs (and this merge's optional verification) start warm.
	cachePaths := make([]string, 0, n)
	for i := 0; i < n; i++ {
		cachePaths = append(cachePaths, shardCachePath(workDir, hash, i, n))
	}
	if _, err := ann.MergeFiles(cachePaths...); err != nil {
		s.reg.Counter("service.cache.load_errors").Inc()
		job.reg.Emit(obs.Event{Kind: "warning",
			Msg: fmt.Sprintf("shard caches not merged: %v", err)})
	}

	// Canonical merge: re-derive the candidate list, validate that the
	// shard checkpoints tile it, rebuild fronts in index order. The
	// merge emits the job's single "done" event.
	paths := make([]string, 0, n)
	for i := 0; i < n; i++ {
		paths = append(paths, shardCheckpointPath(workDir, hash, i, n))
	}
	res, mergeErr := dse.MergeExploreContext(runCtx, cfg, paths)
	study := core.NewStudyWithConfig(cfg)
	study.Result = res
	report := buildReport(study, sel)
	if mergeErr != nil {
		fail(mergeErr.Error(), report)
		return
	}
	if sel != (dse.SelectionSpec{}) {
		if err := study.Reselect(sel); err != nil {
			job.finish(StateFailed, err.Error(), report)
			return
		}
		report = buildReport(study, sel)
	}
	s.reg.Counter("service.jobs.done").Inc()
	job.finish(StateDone, "", report)
}

// runShardWorkerOnce execs one worker process, forwards its NDJSON
// event stream into the job's sink, and returns the worker's failure
// (exit status plus a stderr tail) if any. Worker "done" events are
// swallowed — the merge emits the job's single terminal event.
func (s *Server) runShardWorkerOnce(ctx context.Context, job *Job, seq *atomic.Int64,
	specPath, seedCache, ckpt, cacheOut string, index, shards int) error {
	argv := s.opts.ShardWorkerCommand
	if len(argv) == 0 {
		argv = []string{os.Args[0], "-shard-worker"}
	}
	args := append(append([]string(nil), argv[1:]...),
		"-spec", specPath,
		"-shards", strconv.Itoa(shards),
		"-shard-index", strconv.Itoa(index),
		"-checkpoint", ckpt,
		"-cache-out", cacheOut,
	)
	if seedCache != "" {
		args = append(args, "-cache", seedCache)
	}
	cmd := exec.CommandContext(ctx, argv[0], args...)
	cmd.Env = append(os.Environ(), s.opts.ShardWorkerEnv...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev dse.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			continue // not an event line (worker chatter); drop
		}
		if ev.Kind == dse.EventDone {
			continue
		}
		// Re-stamp: each worker numbers its own stream from 1; the job's
		// stream needs one monotone sequence across all of them.
		ev.Seq = seq.Add(1)
		job.sink(ev)
	}
	scanErr := sc.Err()
	if err := cmd.Wait(); err != nil {
		if msg := stderrTail(&stderr); msg != "" {
			return fmt.Errorf("%w: %s", err, msg)
		}
		return err
	}
	return scanErr
}

// stderrTail returns the last few hundred bytes of a worker's stderr —
// enough to name the failure without flooding the job's error message.
func stderrTail(b *bytes.Buffer) string {
	msg := strings.TrimSpace(b.String())
	const max = 512
	if len(msg) > max {
		msg = "..." + msg[len(msg)-max:]
	}
	return msg
}

// ShardWorkerMain is the entry point of one shard worker process.
// cmd/ttadsed dispatches here when invoked as "ttadsed -shard-worker
// <flags>"; tests re-exec the test binary into it. It runs the spec's
// exploration restricted to this worker's shard slot, streams NDJSON
// dse.Events on stdout, and persists the shard checkpoint and the
// worker's annotation cache. The exit code is 0 on a complete shard,
// 1 on any failure (the coordinator restarts the worker, which resumes
// from the checkpoint), 2 on a flag error.
func ShardWorkerMain(args []string) int {
	fs := flag.NewFlagSet("shard-worker", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	specPath := fs.String("spec", "", "job spec JSON file")
	shards := fs.Int("shards", 1, "total shard count")
	index := fs.Int("shard-index", 0, "this worker's shard index")
	ckpt := fs.String("checkpoint", "", "shard checkpoint file (the worker's product)")
	cache := fs.String("cache", "", "seed annotation cache, read-only warm start (optional)")
	cacheOut := fs.String("cache-out", "", "file for this shard's new annotations (optional)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := runShardWorker(*specPath, *shards, *index, *ckpt, *cache, *cacheOut); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

func runShardWorker(specPath string, shards, index int, ckptPath, cachePath, cacheOut string) error {
	if specPath == "" || ckptPath == "" {
		return errors.New("service: shard worker needs -spec and -checkpoint")
	}
	raw, err := os.ReadFile(specPath)
	if err != nil {
		return err
	}
	var spec jobspec.Spec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return fmt.Errorf("service: decoding worker spec %s: %w", specPath, err)
	}
	cfg, _, err := dse.FromSpec(spec)
	if err != nil {
		return err
	}
	cfg.Shard = &dse.ShardRange{Count: shards, Index: index}
	cfg.Obs = obs.NewRegistry()

	ann := testcost.NewAnnotator(cfg.Width, cfg.Seed)
	ann.Obs = cfg.Obs
	ann.ATPGDeadline = spec.ATPGDeadline.Std()
	if cachePath != "" {
		if err := ann.LoadFile(cachePath); err != nil && !errors.Is(err, fs.ErrNotExist) {
			fmt.Fprintf(os.Stderr, "warning: seed cache %s not loaded: %v\n", cachePath, err)
		}
	}
	cfg.Annotator = ann

	enc := json.NewEncoder(os.Stdout)
	var mu sync.Mutex
	cfg.EventSink = func(ev dse.Event) {
		mu.Lock()
		enc.Encode(&ev) // best-effort stream; a dead coordinator kills us anyway
		mu.Unlock()
	}

	ck, ckErr := dse.OpenCheckpoint(ckptPath, cfg)
	if ck == nil {
		return ckErr
	}
	if ckErr != nil {
		fmt.Fprintf(os.Stderr, "warning: checkpoint %s restarted cold: %v\n", ckptPath, ckErr)
	}
	cfg.Checkpoint = ck

	_, runErr := dse.ExploreContext(context.Background(), cfg)
	// A complete shard flushed on its way out; a partial one must
	// persist its tail so the restart resumes instead of redoing.
	ck.Flush()
	if cacheOut != "" {
		if err := ann.SaveFile(cacheOut); err != nil && runErr == nil {
			runErr = err
		}
	}
	return runErr
}
