// Process-sharded job execution: a job whose Spec.Shard is set fans
// out over N worker OS processes. The coordinator (runSharded) writes
// the worker spec and a read-only seed of the daemon's warm annotation
// cache to a work directory, execs one worker per shard, forwards each
// worker's NDJSON event stream into the job's sink (so progress and
// live fronts aggregate across processes), restarts crashed workers
// from their own shard checkpoints up to a bound, and finally merges
// the shard checkpoints through dse.MergeExploreContext — producing a
// report byte-identical to the unsharded run of the same spec. The
// workers' newly annotated components are merged back into the shared
// annotator, so later jobs warm-start from the whole fan-out's work.
//
// Supervision covers hangs as well as crashes: every line a worker
// writes (candidate events, or explicit heartbeats when the shard is
// quiet) resets a per-worker stall watchdog, and a worker silent past
// ShardSpec.StallTimeout is killed and restarted exactly like a crash —
// the two paths are told apart in the "dse.shard.stall_kills" vs
// "dse.shard.restarts_crash" counters ("dse.shard.restarts" stays the
// total). Restarts are paced by deterministic exponential backoff
// (seeded jitter, so two coordinators replay the same schedule) and
// bounded by MaxRestarts, per worker lifetime or per RestartWindow.
//
// The worker side (ShardWorkerMain) is the same binary: cmd/ttadsed
// dispatches "-shard-worker" to it before flag parsing. A worker is an
// ordinary cancellable exploration with Config.Shard set; its product
// is its shard checkpoint file, its stdout is the event stream, and a
// non-zero exit tells the coordinator to restart it (the checkpoint
// makes the restart a resume, not a redo). Workers arm their own fault
// injector from TTADSE_FAULT_INJECT / TTADSE_FAULT_INJECT_ONCE* in the
// environment (see armWorkerFaults) — the cross-process chaos channel,
// since a live *faultinject.Injector cannot survive an exec.
package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io/fs"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/faultinject"
	"repro/internal/jobspec"
	"repro/internal/obs"
	"repro/internal/testcost"
)

// DefaultMaxRestarts is how many times a crashed (or stall-killed)
// shard worker is restarted (and resumed from its checkpoint) when the
// spec leaves ShardSpec.MaxRestarts zero.
const DefaultMaxRestarts = 2

// DefaultStallTimeout is how long a worker may stay silent before the
// stall watchdog kills it, when the spec leaves ShardSpec.StallTimeout
// zero. Negative spec values disable stall detection.
const DefaultStallTimeout = 2 * time.Minute

// Default restart backoff shape (see ShardSpec.BackoffBase/BackoffMax).
const (
	DefaultBackoffBase = 250 * time.Millisecond
	DefaultBackoffMax  = 10 * time.Second
)

// supervision is the resolved per-fan-out watchdog and restart policy.
type supervision struct {
	stall       time.Duration // 0 = disabled
	heartbeat   time.Duration // 0 = workers emit no heartbeats
	backoffBase time.Duration
	backoffMax  time.Duration
	window      time.Duration // 0 = lifetime restart budget
	maxRestarts int
}

// resolveSupervision fills a ShardSpec's supervision knobs with their
// documented defaults.
func resolveSupervision(sh *jobspec.ShardSpec) supervision {
	sup := supervision{
		stall:       sh.StallTimeout.Std(),
		heartbeat:   sh.HeartbeatInterval.Std(),
		backoffBase: sh.BackoffBase.Std(),
		backoffMax:  sh.BackoffMax.Std(),
		window:      sh.RestartWindow.Std(),
		maxRestarts: sh.MaxRestarts,
	}
	if sup.maxRestarts == 0 {
		sup.maxRestarts = DefaultMaxRestarts
	}
	if sup.stall == 0 {
		sup.stall = DefaultStallTimeout
	} else if sup.stall < 0 {
		sup.stall = 0
	}
	if sup.heartbeat == 0 && sup.stall > 0 {
		sup.heartbeat = sup.stall / 4
	}
	if sup.backoffBase == 0 {
		sup.backoffBase = DefaultBackoffBase
	}
	if sup.backoffMax == 0 {
		sup.backoffMax = DefaultBackoffMax
	}
	if sup.backoffBase > sup.backoffMax {
		sup.backoffBase = sup.backoffMax
	}
	return sup
}

// backoffDelay is the pause before restart number n (0-based) of one
// worker: min(max, base<<n) plus up to 50% seeded jitter, so a fleet of
// workers dying together does not restart in lockstep yet any given
// coordinator replays the same schedule.
func backoffDelay(n int, sup supervision, rng *rand.Rand) time.Duration {
	d := sup.backoffMax
	if shifted := sup.backoffBase << uint(min(n, 30)); shifted > 0 && shifted < d {
		d = shifted
	}
	return d + time.Duration(rng.Int63n(int64(d)/2+1))
}

// backoffSeed derives the deterministic jitter seed of one worker's
// restart schedule from the job identity and the shard index.
func backoffSeed(hash string, index int) int64 {
	h := fnv.New64a()
	h.Write([]byte(hash))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(index))
	h.Write(b[:])
	return int64(h.Sum64())
}

// WorkerStallError reports a shard worker the coordinator killed
// because its event pipe stayed silent past the stall timeout — the
// hang-detection analogue of a crash, counted separately from one.
type WorkerStallError struct {
	Index, Shards int
	Timeout       time.Duration
	Err           error // the kill's exit error, for the curious
}

func (e *WorkerStallError) Error() string {
	return fmt.Sprintf("service: shard %d/%d worker silent for %v, killed by the stall watchdog",
		e.Index, e.Shards, e.Timeout)
}

func (e *WorkerStallError) Unwrap() error { return e.Err }

// shardCheckpointPath names shard i's checkpoint inside the work dir.
func shardCheckpointPath(dir, hash string, i, n int) string {
	return filepath.Join(dir, fmt.Sprintf("job-%s.shard%dof%d.ckpt", hash, i, n))
}

// shardCachePath names shard i's write-side annotation cache. The seed
// cache is read-shared; each worker writes its new annotations here and
// the coordinator unions them after the fan-out.
func shardCachePath(dir, hash string, i, n int) string {
	return filepath.Join(dir, fmt.Sprintf("job-%s.cache.shard%dof%d", hash, i, n))
}

// runSharded is the coordinator half of a sharded job. Called from the
// job goroutine with the running slot already held.
func (s *Server) runSharded(job *Job) {
	cfg, sel, err := dse.FromSpec(job.Spec)
	if err != nil {
		job.finish(StateFailed, err.Error(), nil)
		return
	}
	ann := s.annotator(&job.Spec)
	cfg.Obs = job.reg
	cfg.Inject = s.opts.Inject
	cfg.Annotator = ann
	cfg.EventSink = job.sink

	// With a CheckpointDir the shard files persist across daemon
	// restarts (resubmitting the spec resumes every worker); without
	// one they live in a temp dir for the fan-out's duration.
	workDir := s.opts.CheckpointDir
	if workDir == "" {
		tmp, err := os.MkdirTemp("", "ttadsed-shards-")
		if err != nil {
			job.finish(StateFailed, err.Error(), nil)
			return
		}
		defer os.RemoveAll(tmp)
		workDir = tmp
	}

	hash := job.Spec.Hash()
	n := job.Spec.Shard.Shards
	sup := resolveSupervision(job.Spec.Shard)

	// The worker spec is the job minus everything the coordinator owns:
	// the fan-out itself, cache and checkpoint paths (per-shard, passed
	// as flags) and the wall-clock bound (enforced here by killing the
	// workers through the context).
	wspec := job.Spec
	wspec.Shard = nil
	wspec.Cache = ""
	wspec.Checkpoint = ""
	wspec.Timeout = 0
	specPath := filepath.Join(workDir, "job-"+hash+".spec.json")
	if b, err := json.MarshalIndent(&wspec, "", "  "); err != nil {
		job.finish(StateFailed, err.Error(), nil)
		return
	} else if err := os.WriteFile(specPath, b, 0o644); err != nil {
		job.finish(StateFailed, err.Error(), nil)
		return
	}

	// Seed the workers with the daemon's warm annotations (read-only on
	// their side). Failure to write it only costs warmth, never the job.
	seedCache := filepath.Join(workDir, "job-"+hash+".cache.seed")
	if err := ann.SaveFile(seedCache); err != nil {
		s.reg.Counter("service.cache.save_errors").Inc()
		job.reg.Emit(obs.Event{Kind: "warning",
			Msg: fmt.Sprintf("shard seed cache not written: %v", err)})
		seedCache = ""
	}

	runCtx := job.ctx
	if job.Spec.Timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(job.ctx, job.Spec.Timeout.Std())
		defer cancel()
	}

	// Fan out: one supervisor goroutine per shard, each restarting its
	// worker from the shard checkpoint up to maxRestarts times.
	workersGauge := job.reg.Gauge("dse.shard.workers")
	var live atomic.Int64
	var seq atomic.Int64 // coordinator-stamped sequence over all workers
	werrs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ckpt := shardCheckpointPath(workDir, hash, i, n)
			cacheOut := shardCachePath(workDir, hash, i, n)
			rng := rand.New(rand.NewSource(backoffSeed(hash, i)))
			var restarts []time.Time // actual restarts, for the window budget
			for attempt := 0; ; attempt++ {
				workersGauge.Set(float64(live.Add(1)))
				err := s.runShardWorkerOnce(runCtx, job, &seq, specPath, seedCache, ckpt, cacheOut, i, n, sup)
				workersGauge.Set(float64(live.Add(-1)))
				if err == nil {
					return
				}
				if runCtx.Err() != nil {
					werrs[i] = context.Cause(runCtx)
					return
				}
				if sup.window > 0 {
					// Sliding-window budget: only recent restarts count, so a
					// long-lived worker survives occasional faults while a
					// crash loop still exhausts the budget fast.
					cutoff := time.Now().Add(-sup.window)
					for len(restarts) > 0 && restarts[0].Before(cutoff) {
						restarts = restarts[1:]
					}
				}
				if len(restarts) >= sup.maxRestarts {
					werrs[i] = err
					return
				}
				restarts = append(restarts, time.Now())
				var stall *WorkerStallError
				cause := "died"
				if errors.As(err, &stall) {
					cause = "stalled"
					job.reg.Counter("dse.shard.stall_kills").Inc()
				} else {
					job.reg.Counter("dse.shard.restarts_crash").Inc()
				}
				job.reg.Counter("dse.shard.restarts").Inc()
				job.sink(dse.Event{Kind: dse.EventWarning, Seq: seq.Add(1),
					Msg: fmt.Sprintf("shard %d/%d worker %s (attempt %d of %d), resuming from its checkpoint: %v",
						i, n, cause, attempt+1, sup.maxRestarts+1, err)})
				delay := backoffDelay(len(restarts)-1, sup, rng)
				job.reg.Counter("dse.shard.backoff_ns").Add(int64(delay))
				t := time.NewTimer(delay)
				select {
				case <-runCtx.Done():
					t.Stop()
					werrs[i] = context.Cause(runCtx)
					return
				case <-t.C:
				}
			}
		}(i)
	}
	wg.Wait()

	fail := func(msg string, report []byte) {
		st := terminalState(context.Cause(job.ctx))
		if st == StateFailed && runCtx.Err() != nil && job.ctx.Err() == nil {
			msg = fmt.Sprintf("job timeout %v exceeded: %s", job.Spec.Timeout.Std(), msg)
		}
		s.reg.Counter("service.jobs." + string(st)).Inc()
		job.finish(st, msg, report)
	}
	var failed []string
	for i, e := range werrs {
		if e != nil {
			failed = append(failed, fmt.Sprintf("shard %d/%d: %v", i, n, e))
		}
	}
	if len(failed) > 0 {
		fail(strings.Join(failed, "; "), nil)
		return
	}

	// Union the workers' new annotations into the shared annotator so
	// later jobs (and this merge's optional verification) start warm.
	cachePaths := make([]string, 0, n)
	for i := 0; i < n; i++ {
		cachePaths = append(cachePaths, shardCachePath(workDir, hash, i, n))
	}
	if _, err := ann.MergeFiles(cachePaths...); err != nil {
		s.reg.Counter("service.cache.load_errors").Inc()
		job.reg.Emit(obs.Event{Kind: "warning",
			Msg: fmt.Sprintf("shard caches not merged: %v", err)})
	}

	// Canonical merge: re-derive the candidate list, validate that the
	// shard checkpoints tile it, rebuild fronts in index order. The
	// merge emits the job's single "done" event.
	paths := make([]string, 0, n)
	for i := 0; i < n; i++ {
		paths = append(paths, shardCheckpointPath(workDir, hash, i, n))
	}
	res, mergeErr := dse.MergeExploreContext(runCtx, cfg, paths)
	study := core.NewStudyWithConfig(cfg)
	study.Result = res
	report := buildReport(study, sel)
	if mergeErr != nil {
		fail(mergeErr.Error(), report)
		return
	}
	if sel != (dse.SelectionSpec{}) {
		if err := study.Reselect(sel); err != nil {
			job.finish(StateFailed, err.Error(), report)
			return
		}
		report = buildReport(study, sel)
	}
	s.reg.Counter("service.jobs.done").Inc()
	job.finish(StateDone, "", report)
}

// runShardWorkerOnce execs one worker process, forwards its NDJSON
// event stream into the job's sink, and returns the worker's failure
// (exit status plus a stderr tail) if any. Worker "done" events are
// swallowed — the merge emits the job's single terminal event — and so
// are "heartbeat" (pure liveness: any line resets the stall watchdog)
// and "counter" events (folded into the job registry instead).
func (s *Server) runShardWorkerOnce(ctx context.Context, job *Job, seq *atomic.Int64,
	specPath, seedCache, ckpt, cacheOut string, index, shards int, sup supervision) error {
	argv := s.opts.ShardWorkerCommand
	if len(argv) == 0 {
		argv = []string{os.Args[0], "-shard-worker"}
	}
	args := append(append([]string(nil), argv[1:]...),
		"-spec", specPath,
		"-shards", strconv.Itoa(shards),
		"-shard-index", strconv.Itoa(index),
		"-checkpoint", ckpt,
		"-cache-out", cacheOut,
	)
	if seedCache != "" {
		args = append(args, "-cache", seedCache)
	}
	if sup.heartbeat > 0 {
		args = append(args, "-heartbeat", sup.heartbeat.String())
	}

	// The stall watchdog cancels the worker's context — killing the
	// process — when no stdout line has arrived for sup.stall. The
	// stalled flag tells that kill apart from a parent cancellation.
	wctx, cancel := ctx, context.CancelFunc(func() {})
	var stalled atomic.Bool
	if sup.stall > 0 {
		wctx, cancel = context.WithCancel(ctx)
		defer cancel()
	}
	cmd := exec.CommandContext(wctx, argv[0], args...)
	cmd.Env = append(os.Environ(), s.opts.ShardWorkerEnv...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	var watchdog *time.Timer
	if sup.stall > 0 {
		watchdog = time.AfterFunc(sup.stall, func() {
			stalled.Store(true)
			cancel()
		})
		defer watchdog.Stop()
	}
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		if watchdog != nil {
			watchdog.Reset(sup.stall)
		}
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev dse.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			continue // not an event line (worker chatter); drop
		}
		switch ev.Kind {
		case dse.EventDone, dse.EventHeartbeat:
			continue
		case dse.EventCounter:
			if ev.Code != "" {
				job.reg.Counter(ev.Code).Add(max(int64(ev.N), 1))
			}
			continue
		}
		if ev.Code != "" {
			// A coded warning doubles as a counter increment, so worker
			// warnings are queryable in /v1/metrics, not only readable in
			// the event stream.
			job.reg.Counter(ev.Code).Inc()
		}
		// Re-stamp: each worker numbers its own stream from 1; the job's
		// stream needs one monotone sequence across all of them.
		ev.Seq = seq.Add(1)
		job.sink(ev)
	}
	scanErr := sc.Err()
	if err := cmd.Wait(); err != nil {
		if stalled.Load() && ctx.Err() == nil {
			return &WorkerStallError{Index: index, Shards: shards, Timeout: sup.stall, Err: err}
		}
		if msg := stderrTail(&stderr); msg != "" {
			return fmt.Errorf("%w: %s", err, msg)
		}
		return err
	}
	return scanErr
}

// stderrTail returns the last few hundred bytes of a worker's stderr —
// enough to name the failure without flooding the job's error message.
func stderrTail(b *bytes.Buffer) string {
	msg := strings.TrimSpace(b.String())
	const max = 512
	if len(msg) > max {
		msg = "..." + msg[len(msg)-max:]
	}
	return msg
}

// ShardWorkerMain is the entry point of one shard worker process.
// cmd/ttadsed dispatches here when invoked as "ttadsed -shard-worker
// <flags>"; tests re-exec the test binary into it. It runs the spec's
// exploration restricted to this worker's shard slot, streams NDJSON
// dse.Events on stdout, and persists the shard checkpoint and the
// worker's annotation cache. The exit code is 0 on a complete shard,
// 1 on any failure (the coordinator restarts the worker, which resumes
// from the checkpoint), 2 on a flag error.
func ShardWorkerMain(args []string) int {
	fs := flag.NewFlagSet("shard-worker", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	specPath := fs.String("spec", "", "job spec JSON file")
	shards := fs.Int("shards", 1, "total shard count")
	index := fs.Int("shard-index", 0, "this worker's shard index")
	ckpt := fs.String("checkpoint", "", "shard checkpoint file (the worker's product)")
	cache := fs.String("cache", "", "seed annotation cache, read-only warm start (optional)")
	cacheOut := fs.String("cache-out", "", "file for this shard's new annotations (optional)")
	heartbeat := fs.Duration("heartbeat", 0, "liveness heartbeat interval on the event stream (0 = none)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := runShardWorker(*specPath, *shards, *index, *ckpt, *cache, *cacheOut, *heartbeat); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// Environment variables arming fault injection inside shard worker
// processes (a live *faultinject.Injector cannot cross an exec):
//
//	TTADSE_FAULT_INJECT        a faultinject.ParsePlans spec armed in
//	                           every worker process, restarts included.
//	TTADSE_FAULT_INJECT_ONCE*  "markerfile|spec" — armed only in the one
//	                           process, across the whole fan-out, that
//	                           atomically claims the marker file. Each
//	                           process claims at most one such fault, so
//	                           several ONCE variables land on distinct
//	                           workers; a restarted worker finds its
//	                           marker claimed and runs clean.
const (
	faultInjectEnv     = "TTADSE_FAULT_INJECT"
	faultInjectOnceEnv = "TTADSE_FAULT_INJECT_ONCE"
)

// armWorkerFaults arms a worker's injector from the environment. See
// the faultInjectEnv docs for the variable grammar.
func armWorkerFaults(inj *faultinject.Injector) error {
	if spec := os.Getenv(faultInjectEnv); spec != "" {
		if err := inj.ArmSpec(spec); err != nil {
			return err
		}
	}
	for _, kv := range os.Environ() {
		name, val, _ := strings.Cut(kv, "=")
		if !strings.HasPrefix(name, faultInjectOnceEnv) || val == "" {
			continue
		}
		marker, spec, ok := strings.Cut(val, "|")
		if !ok {
			return fmt.Errorf("service: %s=%q: want markerfile|spec", name, val)
		}
		f, err := os.OpenFile(marker, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			if errors.Is(err, fs.ErrExist) {
				continue // another process claimed this fault
			}
			return err
		}
		f.Close()
		if err := inj.ArmSpec(spec); err != nil {
			return err
		}
		break // one once-fault per process, so faults spread over workers
	}
	return nil
}

func runShardWorker(specPath string, shards, index int, ckptPath, cachePath, cacheOut string, heartbeat time.Duration) error {
	if specPath == "" || ckptPath == "" {
		return errors.New("service: shard worker needs -spec and -checkpoint")
	}
	raw, err := os.ReadFile(specPath)
	if err != nil {
		return err
	}
	var spec jobspec.Spec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return fmt.Errorf("service: decoding worker spec %s: %w", specPath, err)
	}
	cfg, _, err := dse.FromSpec(spec)
	if err != nil {
		return err
	}
	cfg.Shard = &dse.ShardRange{Count: shards, Index: index}
	cfg.Obs = obs.NewRegistry()

	inj := faultinject.New(int64(index) + 1)
	if err := armWorkerFaults(inj); err != nil {
		return err
	}
	cfg.Inject = inj
	// The worker-birth injection point, before anything is written to
	// stdout: a ModeStall here makes the process genuinely silent, so
	// only the coordinator's watchdog can end it.
	if err := inj.Hit(faultinject.ShardWorker); err != nil {
		return err
	}

	enc := json.NewEncoder(os.Stdout)
	var mu sync.Mutex
	emit := func(ev dse.Event) {
		mu.Lock()
		enc.Encode(&ev) // best-effort stream; a dead coordinator kills us anyway
		mu.Unlock()
	}
	cfg.EventSink = emit

	// Heartbeats prove process liveness to the coordinator's stall
	// watchdog through gaps with no candidate traffic (the seed cache
	// load, a huge restored prefix, a slow ATPG run). Any line resets
	// the watchdog; heartbeats just guarantee lines keep coming. They
	// start after the worker-birth injection point above — a stalled
	// worker must stay genuinely silent.
	if heartbeat > 0 {
		hbStop := make(chan struct{})
		var hbDone sync.WaitGroup
		hbDone.Add(1)
		go func() {
			defer hbDone.Done()
			t := time.NewTicker(heartbeat)
			defer t.Stop()
			for {
				select {
				case <-hbStop:
					return
				case <-t.C:
					emit(dse.Event{Kind: dse.EventHeartbeat})
				}
			}
		}()
		defer func() {
			close(hbStop)
			hbDone.Wait()
		}()
	}

	ann := testcost.NewAnnotator(cfg.Width, cfg.Seed)
	ann.Obs = cfg.Obs
	ann.Inject = inj
	ann.ATPGDeadline = spec.ATPGDeadline.Std()
	if cachePath != "" {
		if err := ann.LoadFile(cachePath); err != nil && !errors.Is(err, fs.ErrNotExist) {
			emit(dse.Event{Kind: dse.EventWarning, Code: "dse.shard.seed_cache_errors",
				Msg: fmt.Sprintf("shard %d/%d: seed cache %s not loaded: %v", index, shards, cachePath, err)})
		}
	}
	cfg.Annotator = ann

	ck, ckErr := dse.OpenCheckpoint(ckptPath, cfg)
	if ck == nil {
		return ckErr
	}
	if ckErr != nil {
		emit(dse.Event{Kind: dse.EventWarning, Code: "durability.cold_restarts",
			Msg: fmt.Sprintf("shard %d/%d: checkpoint %s restarted cold: %v", index, shards, ckptPath, ckErr)})
	}
	cfg.Checkpoint = ck

	// The cache load and checkpoint open above may have counted
	// durability incidents (prefix recoveries, quarantines, legacy
	// loads) on the worker-local registry; relay them to the
	// coordinator, which folds them into the job registry.
	relayCounters(cfg.Obs, "durability.", emit)

	_, runErr := dse.ExploreContext(context.Background(), cfg)
	// A complete shard flushed on its way out; a partial one must
	// persist its tail so the restart resumes instead of redoing. A
	// failed final flush fails the worker: exiting 0 behind a torn
	// checkpoint would hand the merge a truncated shard, while exiting 1
	// gets this worker restarted to write it properly.
	if err := ck.FlushErr(); err != nil && runErr == nil {
		runErr = err
	}
	if cacheOut != "" {
		if err := ann.SaveFile(cacheOut); err != nil && runErr == nil {
			runErr = err
		}
	}
	return runErr
}

// relayCounters emits one "counter" event per non-zero counter under
// prefix, carrying worker-local metrics across the process boundary.
func relayCounters(reg *obs.Registry, prefix string, emit func(dse.Event)) {
	snap := reg.Snapshot()
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, prefix) && v > 0 {
			emit(dse.Event{Kind: dse.EventCounter, Code: name, N: int(v)})
		}
	}
}
