package bist

import (
	"testing"

	"repro/internal/gatelib"
	"repro/internal/netlist"
)

func TestLFSRMaximalPeriods(t *testing.T) {
	for _, w := range []int{4, 8, 16} {
		l, err := NewLFSR(w, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := 1<<uint(w) - 1
		if got := l.Period(); got != want {
			t.Errorf("width %d: period %d, want maximal %d", w, got, want)
		}
	}
}

func TestLFSRZeroSeedCoerced(t *testing.T) {
	l, err := NewLFSR(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.State == 0 {
		t.Fatal("all-zero LFSR state accepted (fixed point)")
	}
	s := l.Step()
	if s == 0 {
		t.Fatal("LFSR stepped into the zero state")
	}
}

func TestLFSRUnknownWidthRejected(t *testing.T) {
	if _, err := NewLFSR(5, 1); err == nil {
		t.Error("width without a recorded polynomial accepted")
	}
	if _, err := NewMISR(5); err == nil {
		t.Error("MISR width without a polynomial accepted")
	}
}

func TestHardwareLFSRMatchesSoftware(t *testing.T) {
	sw, err := NewLFSR(16, 0xACE1)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := BuildLFSR(16, 0xACE1)
	if err != nil {
		t.Fatal(err)
	}
	st := netlist.NewState(hw)
	out, _ := hw.OutputPort("state")
	for cyc := 0; cyc < 200; cyc++ {
		st.Eval()
		got := st.OutputBusValue(out, 0)
		if cyc > 0 { // cycle 0 shows the seed
			want := sw.Step()
			if got != want {
				t.Fatalf("cycle %d: hardware %#x, software %#x", cyc, got, want)
			}
		}
		st.Step()
	}
}

func TestHardwareMISRMatchesSoftware(t *testing.T) {
	sw, err := NewMISR(16)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := BuildMISR(16)
	if err != nil {
		t.Fatal(err)
	}
	st := netlist.NewState(hw)
	in, _ := hw.InputPort("in")
	sig, _ := hw.OutputPort("sig")
	words := []uint64{0xDEAD, 0xBEEF, 0x1234, 0xFFFF, 0x0000, 0xA5A5}
	for _, w := range words {
		sw.Absorb(w)
		st.SetInputBus(in, w)
		st.Cycle()
	}
	st.Eval()
	if got := st.OutputBusValue(sig, 0); got != sw.Signature() {
		t.Fatalf("hardware signature %#x, software %#x", got, sw.Signature())
	}
}

func TestMISRDistinguishesResponses(t *testing.T) {
	// A single flipped response word must change the signature (no
	// immediate aliasing).
	good, _ := NewMISR(16)
	bad, _ := NewMISR(16)
	for i := 0; i < 100; i++ {
		w := uint64(i * 2654435761)
		good.Absorb(w & 0xFFFF)
		if i == 50 {
			bad.Absorb((w ^ 4) & 0xFFFF)
		} else {
			bad.Absorb(w & 0xFFFF)
		}
	}
	if good.Signature() == bad.Signature() {
		t.Fatal("MISR aliased a single-bit response error")
	}
}

func TestEvaluateCoverageCurveMonotone(t *testing.T) {
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 8, Adder: gatelib.AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(alu.Seq, 0.95, 2048, 0xACE1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Curve) < 3 {
		t.Fatalf("coverage curve has only %d samples", len(ev.Curve))
	}
	prev := -1.0
	for _, p := range ev.Curve {
		if p.Coverage < prev {
			t.Fatalf("coverage dropped: %v", ev.Curve)
		}
		prev = p.Coverage
	}
	if ev.FinalCoverage < 0.90 {
		t.Errorf("pseudo-random coverage %.3f unexpectedly low after 2048 patterns", ev.FinalCoverage)
	}
	if ev.AreaOverhead <= 0 {
		t.Error("BIST area overhead not accounted")
	}
	if ev.PatternsToTarget < 0 && ev.FinalCoverage >= 0.95 {
		t.Error("target reached but PatternsToTarget unset")
	}
}

func TestEvaluateDeterministicForSeed(t *testing.T) {
	cmp, err := gatelib.NewCMP(8)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := Evaluate(cmp.Seq, 0.9, 512, 7)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Evaluate(cmp.Seq, 0.9, 512, 7)
	if err != nil {
		t.Fatal(err)
	}
	if e1.FinalCoverage != e2.FinalCoverage || e1.PatternsToTarget != e2.PatternsToTarget {
		t.Fatal("nondeterministic BIST evaluation")
	}
}

func TestBISTNeedsManyMorePatternsThanATPG(t *testing.T) {
	// The motivation for deterministic patterns in the paper's flow:
	// pseudo-random BIST needs far more patterns than the compacted ATPG
	// set to reach comparable coverage on the ALU.
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 8, Adder: gatelib.AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(alu.Seq, 0.99, 4096, 0xACE1)
	if err != nil {
		t.Fatal(err)
	}
	// The deterministic set for ALU8 is ~60-90 patterns (see atpg tests);
	// pseudo-random should need several times that for 99 %.
	if ev.PatternsToTarget >= 0 && ev.PatternsToTarget < 128 {
		t.Errorf("BIST reached 99%% in only %d patterns; suspicious", ev.PatternsToTarget)
	}
}
