// Package bist implements the built-in self-test alternative the paper
// cites (Gizopoulos et al. [13]) and argues against for TTAs: an LFSR
// pseudo-random pattern generator and a MISR response compactor wrapped
// around a datapath component. It provides both software models and
// gate-level netlist generators, measures pseudo-random fault coverage as
// a function of pattern count, and quantifies the area/test-time trade
// against full scan and the paper's functional approach.
package bist

import (
	"fmt"

	"repro/internal/atpg"
	"repro/internal/netlist"
)

// MaximalTaps maps register widths to tap sets of maximal-length
// polynomials (Fibonacci form; taps are 1-based bit positions, the
// highest equal to the width).
var MaximalTaps = map[int][]int{
	4:  {4, 3},
	8:  {8, 6, 5, 4},
	16: {16, 15, 13, 4},
	24: {24, 23, 22, 17},
	32: {32, 22, 2, 1},
}

// LFSR is the software model of a Fibonacci linear-feedback shift
// register.
type LFSR struct {
	Width int
	Taps  []int
	State uint64
}

// NewLFSR builds an LFSR with a maximal-length polynomial for the width.
func NewLFSR(width int, seed uint64) (*LFSR, error) {
	taps, ok := MaximalTaps[width]
	if !ok {
		return nil, fmt.Errorf("bist: no maximal polynomial recorded for width %d", width)
	}
	mask := uint64(1)<<uint(width) - 1
	seed &= mask
	if seed == 0 {
		seed = 1 // the all-zero state is the LFSR's fixed point
	}
	return &LFSR{Width: width, Taps: taps, State: seed}, nil
}

// Step advances one cycle and returns the new state.
func (l *LFSR) Step() uint64 {
	fb := uint64(0)
	for _, t := range l.Taps {
		fb ^= l.State >> uint(t-1) & 1
	}
	l.State = (l.State<<1 | fb) & (uint64(1)<<uint(l.Width) - 1)
	return l.State
}

// Period runs the register until the initial state recurs (careful: up to
// 2^width-1 steps).
func (l *LFSR) Period() int {
	start := l.State
	n := 0
	for {
		l.Step()
		n++
		if l.State == start || n > 1<<uint(l.Width) {
			return n
		}
	}
}

// MISR is the software model of a multiple-input signature register: each
// cycle the response word is XORed into the shifting state.
type MISR struct {
	Width int
	Taps  []int
	State uint64
}

// NewMISR builds a MISR with a maximal-length polynomial.
func NewMISR(width int) (*MISR, error) {
	taps, ok := MaximalTaps[width]
	if !ok {
		return nil, fmt.Errorf("bist: no maximal polynomial recorded for width %d", width)
	}
	return &MISR{Width: width, Taps: taps}, nil
}

// Absorb folds one response word into the signature.
func (m *MISR) Absorb(word uint64) {
	fb := uint64(0)
	for _, t := range m.Taps {
		fb ^= m.State >> uint(t-1) & 1
	}
	mask := uint64(1)<<uint(m.Width) - 1
	m.State = ((m.State<<1 | fb) ^ word) & mask
}

// Signature returns the accumulated signature.
func (m *MISR) Signature() uint64 { return m.State }

// BuildLFSR emits the LFSR as a gate-level netlist (ports: none in,
// "state" out) — the hardware the BIST scheme adds next to the component.
func BuildLFSR(width int, seed uint64) (*netlist.Netlist, error) {
	taps, ok := MaximalTaps[width]
	if !ok {
		return nil, fmt.Errorf("bist: no maximal polynomial recorded for width %d", width)
	}
	if seed == 0 {
		seed = 1
	}
	b := netlist.NewBuilder(fmt.Sprintf("lfsr%d", width))
	q := make([]netlist.Net, width)
	ffs := make([]int, width)
	for i := 0; i < width; i++ {
		q[i], ffs[i] = b.FFDecl(fmt.Sprintf("l%d", i), seed>>uint(i)&1 == 1)
	}
	fbTerms := make([]netlist.Net, len(taps))
	for i, t := range taps {
		fbTerms[i] = q[t-1]
	}
	fb := b.Xor(fbTerms...)
	b.SetD(ffs[0], fb)
	for i := 1; i < width; i++ {
		b.SetD(ffs[i], q[i-1])
	}
	b.OutputBus("state", q)
	return b.Build()
}

// BuildMISR emits the MISR netlist (ports: "in" data word; "sig" out).
func BuildMISR(width int) (*netlist.Netlist, error) {
	taps, ok := MaximalTaps[width]
	if !ok {
		return nil, fmt.Errorf("bist: no maximal polynomial recorded for width %d", width)
	}
	b := netlist.NewBuilder(fmt.Sprintf("misr%d", width))
	in := b.InputBus("in", width)
	q := make([]netlist.Net, width)
	ffs := make([]int, width)
	for i := 0; i < width; i++ {
		q[i], ffs[i] = b.FFDecl(fmt.Sprintf("m%d", i), false)
	}
	fbTerms := make([]netlist.Net, len(taps))
	for i, t := range taps {
		fbTerms[i] = q[t-1]
	}
	fb := b.Xor(fbTerms...)
	b.SetD(ffs[0], b.Xor(fb, in[0]))
	for i := 1; i < width; i++ {
		b.SetD(ffs[i], b.Xor(q[i-1], in[i]))
	}
	b.OutputBus("sig", q)
	return b.Build()
}

// CoveragePoint is one sample of the pseudo-random coverage curve.
type CoveragePoint struct {
	Patterns int
	Coverage float64
}

// Evaluation reports a BIST assessment of one component.
type Evaluation struct {
	Component string
	// Curve samples coverage after exponentially growing pattern counts.
	Curve []CoveragePoint
	// PatternsToTarget is the pattern count first reaching TargetCoverage
	// (-1 if never reached within the budget).
	PatternsToTarget int
	TargetCoverage   float64
	// FinalCoverage after the full budget.
	FinalCoverage float64
	// AreaOverhead is the LFSR+MISR cell area added by the scheme.
	AreaOverhead float64
	// TestCycles equals the pattern budget: BIST applies one pattern per
	// cycle, its selling point.
	TestCycles int
}

// Evaluate measures pseudo-random stuck-at coverage of the circuit (scan
// view) fed from a 16-bit LFSR whose successive states are concatenated to
// fill the controllable points.
func Evaluate(n *netlist.Netlist, target float64, budget int, seed uint64) (*Evaluation, error) {
	lfsr, err := NewLFSR(16, seed)
	if err != nil {
		return nil, err
	}
	sim := atpg.NewSimulator(n)
	u := atpg.NewUniverse(n)
	detected := make([]bool, len(u.Faults))
	nDet := 0

	lfsrHW, err := BuildLFSR(16, seed)
	if err != nil {
		return nil, err
	}
	misrHW, err := BuildMISR(16)
	if err != nil {
		return nil, err
	}
	ev := &Evaluation{
		Component:        n.Name,
		TargetCoverage:   target,
		PatternsToTarget: -1,
		AreaOverhead:     lfsrHW.Area() + misrHW.Area(),
		TestCycles:       budget,
	}

	nc := sim.NumControls()
	applied := 0
	nextSample := 64
	for applied < budget {
		block := make([]atpg.Pattern, 0, 64)
		for k := 0; k < 64 && applied+k < budget; k++ {
			p := make(atpg.Pattern, nc)
			var word uint64
			for i := 0; i < nc; i++ {
				if i%16 == 0 {
					word = lfsr.Step()
				}
				p[i] = uint8(word >> uint(i%16) & 1)
			}
			block = append(block, p)
		}
		sim.LoadBlock(block)
		for fi := range u.Faults {
			if !detected[fi] && sim.Detects(u.Faults[fi]) != 0 {
				detected[fi] = true
				nDet++
			}
		}
		applied += len(block)
		cov := float64(nDet) / float64(len(u.Faults))
		if applied >= nextSample || applied >= budget {
			ev.Curve = append(ev.Curve, CoveragePoint{Patterns: applied, Coverage: cov})
			nextSample *= 2
		}
		if ev.PatternsToTarget < 0 && cov >= target {
			ev.PatternsToTarget = applied
		}
	}
	ev.FinalCoverage = float64(nDet) / float64(len(u.Faults))
	return ev, nil
}
