// Package workloads provides additional application kernels beyond Crypt,
// lowered to the operation IR. Different operation mixes (bit-serial CRC,
// comparison-heavy reductions, memory-streaming checksums) pull the
// application-specific exploration toward different architectures — the
// "AS" in ASIP. Every kernel comes with a plain-Go reference
// implementation it is validated against.
package workloads

import (
	"fmt"

	"repro/internal/program"
)

// CRC16Poly is the reflected CRC-16/IBM polynomial.
const CRC16Poly = 0xA001

// CRC16 builds a bit-serial CRC-16 kernel over n data words held in
// memory at addresses base..base+n-1 (low byte of each word). The
// conditional XOR of the polynomial is branch-free: mask = 0 - (crc & 1).
// ALU-heavy with a long serial dependence chain.
func CRC16(n int, base uint64) (*program.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("workloads: CRC16 over %d words", n)
	}
	g := program.NewGraph(fmt.Sprintf("crc16_x%d", n), 16)
	crc := g.In() // initial CRC value
	zero := g.ConstV(0)
	one := g.ConstV(1)
	poly := g.ConstV(CRC16Poly)
	ff := g.ConstV(0xFF)
	for i := 0; i < n; i++ {
		data := g.And(g.Load(g.ConstV(base+uint64(i))), ff)
		crc = g.Xor(crc, data)
		for bit := 0; bit < 8; bit++ {
			lsb := g.And(crc, one)
			mask := g.Sub(zero, lsb) // 0x0000 or 0xFFFF
			crc = g.Xor(g.Srl(crc, one), g.And(poly, mask))
		}
	}
	g.Output(crc)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// CRC16Golden computes the same CRC in plain Go.
func CRC16Golden(init uint16, data []byte) uint16 {
	crc := init
	for _, b := range data {
		crc ^= uint16(b)
		for bit := 0; bit < 8; bit++ {
			if crc&1 == 1 {
				crc = crc>>1 ^ CRC16Poly
			} else {
				crc >>= 1
			}
		}
	}
	return crc
}

// VecMax builds a balanced-tree unsigned maximum over n memory words at
// base..base+n-1. Branch-free select via a comparison-derived mask:
// CMP-heavy with log-depth parallelism (a second comparator pays off).
func VecMax(n int, base uint64) (*program.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("workloads: VecMax over %d words", n)
	}
	g := program.NewGraph(fmt.Sprintf("vecmax_x%d", n), 16)
	zero := g.ConstV(0)
	vals := make([]program.ValueID, n)
	for i := range vals {
		vals[i] = g.Load(g.ConstV(base + uint64(i)))
	}
	for len(vals) > 1 {
		var next []program.ValueID
		for i := 0; i+1 < len(vals); i += 2 {
			a, b := vals[i], vals[i+1]
			sel := g.Ltu(a, b)       // 1 when b is larger
			mask := g.Sub(zero, sel) // 0x0000 / 0xFFFF
			keepA := g.And(a, g.Xor(mask, g.ConstV(0xFFFF)))
			keepB := g.And(b, mask)
			next = append(next, g.Or(keepA, keepB))
		}
		if len(vals)%2 == 1 {
			next = append(next, vals[len(vals)-1])
		}
		vals = next
	}
	g.Output(vals[0])
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// VecMaxReg builds the balanced-tree maximum over n register-resident
// inputs (no memory traffic): the comparison tree itself becomes the
// bottleneck, exposing comparator-count sensitivity.
func VecMaxReg(n int) (*program.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("workloads: VecMaxReg over %d values", n)
	}
	g := program.NewGraph(fmt.Sprintf("vecmaxreg_x%d", n), 16)
	zero := g.ConstV(0)
	allOnes := g.ConstV(0xFFFF)
	vals := make([]program.ValueID, n)
	for i := range vals {
		vals[i] = g.In()
	}
	for len(vals) > 1 {
		var next []program.ValueID
		for i := 0; i+1 < len(vals); i += 2 {
			a, b := vals[i], vals[i+1]
			sel := g.Ltu(a, b)
			mask := g.Sub(zero, sel)
			next = append(next, g.Or(g.And(a, g.Xor(mask, allOnes)), g.And(b, mask)))
		}
		if len(vals)%2 == 1 {
			next = append(next, vals[len(vals)-1])
		}
		vals = next
	}
	g.Output(vals[0])
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// CountBelow builds a classification kernel: how many of n
// register-resident values are below a threshold. All n comparisons are
// independent, so comparator bandwidth directly bounds the schedule.
func CountBelow(n int) (*program.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("workloads: CountBelow over %d values", n)
	}
	g := program.NewGraph(fmt.Sprintf("countbelow_x%d", n), 16)
	thr := g.In()
	flags := make([]program.ValueID, n)
	for i := range flags {
		flags[i] = g.Ltu(g.In(), thr)
	}
	for len(flags) > 1 {
		var next []program.ValueID
		for i := 0; i+1 < len(flags); i += 2 {
			next = append(next, g.Add(flags[i], flags[i+1]))
		}
		if len(flags)%2 == 1 {
			next = append(next, flags[len(flags)-1])
		}
		flags = next
	}
	g.Output(flags[0])
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// CountBelowGolden counts values strictly below the threshold.
func CountBelowGolden(thr uint16, data []uint16) uint16 {
	var n uint16
	for _, v := range data {
		if v < thr {
			n++
		}
	}
	return n
}

// VecMaxGolden computes the unsigned maximum in plain Go.
func VecMaxGolden(data []uint16) uint16 {
	var m uint16
	for _, v := range data {
		if v > m {
			m = v
		}
	}
	return m
}

// Checksum builds a Fletcher-style streaming checksum over n memory words:
// two running sums, memory-bound with modest ALU work per load.
func Checksum(n int, base uint64) (*program.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("workloads: Checksum over %d words", n)
	}
	g := program.NewGraph(fmt.Sprintf("checksum_x%d", n), 16)
	s1 := g.ConstV(0)
	s2 := g.ConstV(0)
	for i := 0; i < n; i++ {
		v := g.Load(g.ConstV(base + uint64(i)))
		s1 = g.Add(s1, v)
		s2 = g.Add(s2, s1)
	}
	g.Output(s1)
	g.Output(s2)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// ChecksumGolden computes the two running sums in plain Go (mod 2^16).
func ChecksumGolden(data []uint16) (uint16, uint16) {
	var s1, s2 uint16
	for _, v := range data {
		s1 += v
		s2 += s1
	}
	return s1, s2
}

// MemoryFor places data words at base..base+len-1.
func MemoryFor(base uint64, data []uint16) program.Memory {
	mem := program.Memory{}
	for i, v := range data {
		mem[base+uint64(i)] = uint64(v)
	}
	return mem
}
