package workloads

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/program"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/tta"
)

func TestCRC16MatchesGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(6)
		data := make([]byte, n)
		words := make([]uint16, n)
		for i := range data {
			data[i] = byte(rng.Intn(256))
			words[i] = uint16(data[i])
		}
		init := uint16(rng.Intn(1 << 16))
		g, err := CRC16(n, 0x20)
		if err != nil {
			t.Fatal(err)
		}
		out, err := program.Evaluate(g, []uint64{uint64(init)}, MemoryFor(0x20, words))
		if err != nil {
			t.Fatal(err)
		}
		if uint16(out[0]) != CRC16Golden(init, data) {
			t.Fatalf("crc(%x, init=%#x) = %#x, want %#x", data, init, out[0], CRC16Golden(init, data))
		}
	}
}

func TestCRC16KnownValue(t *testing.T) {
	// CRC-16/ARC of "123456789" with init 0 is the classic check value
	// 0xBB3D.
	data := []byte("123456789")
	if got := CRC16Golden(0, data); got != 0xBB3D {
		t.Fatalf("golden CRC of check string = %#x, want 0xBB3D", got)
	}
	words := make([]uint16, len(data))
	for i, b := range data {
		words[i] = uint16(b)
	}
	g, err := CRC16(len(data), 0x10)
	if err != nil {
		t.Fatal(err)
	}
	out, err := program.Evaluate(g, []uint64{0}, MemoryFor(0x10, words))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0xBB3D {
		t.Fatalf("kernel CRC = %#x, want 0xBB3D", out[0])
	}
}

func TestVecMaxMatchesGolden(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		g, err := VecMax(len(raw), 0x40)
		if err != nil {
			return false
		}
		out, err := program.Evaluate(g, nil, MemoryFor(0x40, raw))
		if err != nil {
			return false
		}
		return uint16(out[0]) == VecMaxGolden(raw)
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestVecMaxOddAndDuplicates(t *testing.T) {
	data := []uint16{7, 7, 3, 9, 9}
	g, err := VecMax(len(data), 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := program.Evaluate(g, nil, MemoryFor(0, data))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 9 {
		t.Fatalf("max = %d, want 9", out[0])
	}
}

func TestChecksumMatchesGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	data := make([]uint16, 10)
	for i := range data {
		data[i] = uint16(rng.Intn(1 << 16))
	}
	g, err := Checksum(len(data), 0x80)
	if err != nil {
		t.Fatal(err)
	}
	out, err := program.Evaluate(g, nil, MemoryFor(0x80, data))
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := ChecksumGolden(data)
	if uint16(out[0]) != s1 || uint16(out[1]) != s2 {
		t.Fatalf("checksum (%#x,%#x), want (%#x,%#x)", out[0], out[1], s1, s2)
	}
}

func TestKernelsRejectDegenerateSizes(t *testing.T) {
	if _, err := CRC16(0, 0); err == nil {
		t.Error("CRC16(0) accepted")
	}
	if _, err := VecMax(1, 0); err == nil {
		t.Error("VecMax(1) accepted")
	}
	if _, err := Checksum(0, 0); err == nil {
		t.Error("Checksum(0) accepted")
	}
}

func TestWorkloadsRunOnFigure9TTA(t *testing.T) {
	arch := tta.Figure9()
	rng := rand.New(rand.NewSource(5))
	data := make([]uint16, 8)
	for i := range data {
		data[i] = uint16(rng.Intn(1 << 16))
	}

	cases := []struct {
		name   string
		build  func() (*program.Graph, error)
		inputs []uint64
		check  func(out []uint64) bool
	}{
		{
			"crc16",
			func() (*program.Graph, error) { return CRC16(4, 0x30) },
			[]uint64{0xFFFF},
			func(out []uint64) bool {
				bytes := []byte{byte(data[0]), byte(data[1]), byte(data[2]), byte(data[3])}
				return uint16(out[0]) == CRC16Golden(0xFFFF, bytes)
			},
		},
		{
			"vecmax",
			func() (*program.Graph, error) { return VecMax(8, 0x30) },
			nil,
			func(out []uint64) bool { return uint16(out[0]) == VecMaxGolden(data) },
		},
		{
			"checksum",
			func() (*program.Graph, error) { return Checksum(8, 0x30) },
			nil,
			func(out []uint64) bool {
				s1, s2 := ChecksumGolden(data)
				return uint16(out[0]) == s1 && uint16(out[1]) == s2
			},
		},
	}
	for _, c := range cases {
		g, err := c.build()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		res, err := sched.Schedule(g, arch, sched.Options{})
		if err != nil {
			t.Fatalf("%s: schedule: %v", c.name, err)
		}
		out, err := sim.Run(res, c.inputs, MemoryFor(0x30, data), sim.Options{Verify: true})
		if err != nil {
			t.Fatalf("%s: sim: %v", c.name, err)
		}
		if !c.check(out) {
			t.Fatalf("%s: wrong TTA result %v", c.name, out)
		}
		t.Logf("%s on figure 9: %d cycles, %d moves (%v)", c.name, res.Cycles, len(res.Moves), g.Stats())
	}
}

func TestOperationMixesDiffer(t *testing.T) {
	// The point of multiple workloads: distinct resource profiles.
	crc, _ := CRC16(4, 0)
	vm, _ := VecMax(8, 0)
	cs, _ := Checksum(8, 0)
	if vm.Stats().CMP == 0 {
		t.Error("VecMax should exercise the comparator")
	}
	if crc.Stats().CMP != 0 {
		t.Error("CRC16 should not need the comparator")
	}
	ld := cs.Stats().Loads
	if ld != 8 {
		t.Errorf("Checksum loads %d, want 8", ld)
	}
	ratioCRC := float64(crc.Stats().ALU) / float64(crc.Stats().Loads)
	ratioCS := float64(cs.Stats().ALU) / float64(ld)
	if ratioCRC <= ratioCS {
		t.Errorf("CRC should be far more ALU-bound than Checksum (%.1f vs %.1f)", ratioCRC, ratioCS)
	}
}

func TestCountBelowMatchesGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(10)
		data := make([]uint16, n)
		for i := range data {
			data[i] = uint16(rng.Intn(1 << 16))
		}
		thr := uint16(rng.Intn(1 << 16))
		g, err := CountBelow(n)
		if err != nil {
			t.Fatal(err)
		}
		inputs := []uint64{uint64(thr)}
		for _, v := range data {
			inputs = append(inputs, uint64(v))
		}
		out, err := program.Evaluate(g, inputs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if uint16(out[0]) != CountBelowGolden(thr, data) {
			t.Fatalf("count(%v < %d) = %d, want %d", data, thr, out[0], CountBelowGolden(thr, data))
		}
	}
	if _, err := CountBelow(1); err == nil {
		t.Error("CountBelow(1) accepted")
	}
}

func TestVecMaxRegMatchesGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(8)
		data := make([]uint16, n)
		inputs := make([]uint64, n)
		for i := range data {
			data[i] = uint16(rng.Intn(1 << 16))
			inputs[i] = uint64(data[i])
		}
		g, err := VecMaxReg(n)
		if err != nil {
			t.Fatal(err)
		}
		out, err := program.Evaluate(g, inputs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if uint16(out[0]) != VecMaxGolden(data) {
			t.Fatalf("maxreg(%v) = %d, want %d", data, out[0], VecMaxGolden(data))
		}
	}
	if _, err := VecMaxReg(1); err == nil {
		t.Error("VecMaxReg(1) accepted")
	}
}
