package rtl

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/crypt"
	"repro/internal/gatelib"
	"repro/internal/program"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/tta"
)

func smallArch(buses int) *tta.Architecture {
	a := &tta.Architecture{
		Name: "rtlarch", Width: 16, Buses: buses,
		Components: []tta.Component{
			tta.NewFU(tta.ALU, "ALU"),
			tta.NewFU(tta.CMP, "CMP"),
			tta.NewRF("RF1", 8, 1, 2),
			tta.NewRF("RF2", 12, 1, 1),
			tta.NewFU(tta.LDST, "LD/ST"),
			tta.NewPC("PC"),
			tta.NewIMM("Immediate"),
		},
	}
	tta.AssignPorts(a, tta.SpreadFirst)
	return a
}

// runAllTiers schedules g, runs the behavioural simulator and the
// gate-level machine, and requires bit-identical outputs from both.
func runAllTiers(t *testing.T, arch *tta.Architecture, m *Machine, g *program.Graph, inputs []uint64, mem program.Memory) []uint64 {
	t.Helper()
	res, err := sched.Schedule(g, arch, sched.Options{})
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	memB := program.Memory{}
	memR := map[uint64]uint64{}
	for k, v := range mem {
		memB[k] = v
		memR[k] = v
	}
	behav, err := sim.Run(res, inputs, memB, sim.Options{Verify: true})
	if err != nil {
		t.Fatalf("behavioural sim: %v", err)
	}
	gates, err := m.RunSchedule(res, inputs, memR)
	if err != nil {
		t.Fatalf("rtl run: %v", err)
	}
	if len(gates) != len(behav) {
		t.Fatalf("output counts differ: %d vs %d", len(gates), len(behav))
	}
	for i := range gates {
		if gates[i] != behav[i] {
			t.Fatalf("output %d: gates=%#x behavioural=%#x", i, gates[i], behav[i])
		}
	}
	return gates
}

var (
	cachedArch *tta.Architecture
	cachedM    *Machine
)

func machine(t *testing.T) (*tta.Architecture, *Machine) {
	t.Helper()
	if cachedM == nil {
		cachedArch = smallArch(2)
		m, err := Build(cachedArch, gatelib.NewLibrary())
		if err != nil {
			t.Fatal(err)
		}
		cachedM = m
	}
	return cachedArch, cachedM
}

func TestBuildAssemblesDatapath(t *testing.T) {
	_, m := machine(t)
	st := m.Stats()
	if st.Gates < 2000 || st.FFs < 300 {
		t.Fatalf("datapath suspiciously small: %s", st)
	}
	t.Logf("assembled datapath: %s", st)
}

func TestSingleAddThroughGates(t *testing.T) {
	arch, m := machine(t)
	g := program.NewGraph("add", 16)
	a := g.In()
	b := g.In()
	g.Output(g.Add(a, b))
	out := runAllTiers(t, arch, m, g, []uint64{0x1234, 0x4321}, nil)
	if out[0] != 0x5555 {
		t.Fatalf("got %#x, want 0x5555", out[0])
	}
}

func TestAllOpcodesThroughGates(t *testing.T) {
	arch, m := machine(t)
	ops := []program.OpCode{
		program.Add, program.Sub, program.Sll, program.Srl,
		program.And, program.Or, program.Xor,
		program.Eq, program.Ne, program.Ltu, program.Lts,
		program.Geu, program.Ges, program.Gtu, program.Gts,
	}
	rng := rand.New(rand.NewSource(42))
	for _, op := range ops {
		g := program.NewGraph("op", 16)
		a := g.In()
		b := g.In()
		g.Output(g.Bin(op, a, b))
		in := []uint64{uint64(rng.Intn(1 << 16)), uint64(rng.Intn(1 << 16))}
		want, err := program.Evaluate(g, in, nil)
		if err != nil {
			t.Fatal(err)
		}
		out := runAllTiers(t, arch, m, g, in, nil)
		if out[0] != want[0] {
			t.Fatalf("%s(%#x,%#x): gates=%#x reference=%#x", op, in[0], in[1], out[0], want[0])
		}
	}
}

func TestMemoryThroughGates(t *testing.T) {
	arch, m := machine(t)
	g := program.NewGraph("mem", 16)
	base := g.ConstV(0x40)
	one := g.ConstV(1)
	v := g.Load(base)
	v2 := g.Add(v, one)
	a2 := g.Add(base, one)
	g.Store(a2, v2)
	g.Output(g.Load(a2))
	out := runAllTiers(t, arch, m, g, nil, program.Memory{0x40: 0x00AA})
	if out[0] != 0x00AB {
		t.Fatalf("got %#x, want 0xAB", out[0])
	}
	// The RTL memory map must hold the stored value too.
	if m.Mem[0x41] != 0x00AB {
		t.Fatalf("rtl memory holds %#x at 0x41", m.Mem[0x41])
	}
}

func TestImmediatesThroughGates(t *testing.T) {
	arch, m := machine(t)
	g := program.NewGraph("imm", 16)
	g.Output(g.Xor(g.ConstV(0xAAAA), g.ConstV(0x0FF0)))
	out := runAllTiers(t, arch, m, g, nil, nil)
	if out[0] != 0xA55A {
		t.Fatalf("got %#x, want 0xA55A", out[0])
	}
}

func TestFuzzGatesAgreeWithBehavioural(t *testing.T) {
	arch, m := machine(t)
	rng := rand.New(rand.NewSource(777))
	binOps := []program.OpCode{
		program.Add, program.Sub, program.Sll, program.Srl,
		program.And, program.Or, program.Xor,
		program.Eq, program.Ltu, program.Gts,
	}
	trials := 8
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		g := program.NewGraph("fuzz", 16)
		var vals []program.ValueID
		for i := 0; i < 2; i++ {
			vals = append(vals, g.In())
		}
		vals = append(vals, g.ConstV(uint64(rng.Intn(1<<16))))
		n := 10 + rng.Intn(20)
		for i := 0; i < n; i++ {
			pick := func() program.ValueID { return vals[rng.Intn(len(vals))] }
			switch rng.Intn(8) {
			case 0:
				vals = append(vals, g.Load(pick()))
			case 1:
				g.Store(pick(), pick())
			default:
				vals = append(vals, g.Bin(binOps[rng.Intn(len(binOps))], pick(), pick()))
			}
		}
		g.Output(vals[len(vals)-1])
		inputs := []uint64{uint64(rng.Intn(1 << 16)), uint64(rng.Intn(1 << 16))}
		mem := program.Memory{}
		for i := 0; i < 6; i++ {
			mem[uint64(rng.Intn(32))] = uint64(rng.Intn(1 << 16))
		}
		runAllTiers(t, arch, m, g, inputs, mem)
	}
}

func TestCryptFeistelChunkThroughGates(t *testing.T) {
	// The headline co-simulation: a piece of the real crypt round — the
	// E-expansion chunk extraction and key mixing for two S-boxes plus the
	// SP-table lookups — executed in gates.
	arch, m := machine(t)
	g := program.NewGraph("feistel2", 16)
	rhi := g.In()
	rlo := g.In()
	khi := g.In()
	c := func(v uint64) program.ValueID { return g.ConstV(v) }
	xhi := g.Or(g.Srl(rhi, c(1)), g.Sll(rlo, c(15)))
	chunk0 := g.Srl(xhi, c(10))
	chunk1 := g.And(g.Srl(xhi, c(6)), c(63))
	k0 := g.Srl(khi, c(10))
	k1 := g.And(g.Srl(khi, c(4)), c(63))
	idx0 := g.Xor(chunk0, k0)
	idx1 := g.Xor(chunk1, k1)
	v0 := g.Load(g.Add(c(crypt.SPHiBase), idx0))
	v1 := g.Load(g.Add(c(crypt.SPHiBase+64), idx1))
	g.Output(g.Xor(v0, v1))
	inputs := []uint64{0xB3B6, 0xA08E, 0x1357}
	out := runAllTiers(t, arch, m, g, inputs, crypt.MemoryImage())
	want, err := program.Evaluate(g, inputs, crypt.MemoryImage())
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != want[0] {
		t.Fatalf("gates=%#x reference=%#x", out[0], want[0])
	}
}

func TestRunScheduleRejectsForeignArch(t *testing.T) {
	_, m := machine(t)
	other := smallArch(2)
	g := program.NewGraph("x", 16)
	g.Output(g.Add(g.In(), g.In()))
	res, err := sched.Schedule(g, other, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunSchedule(res, []uint64{1, 2}, nil); err == nil {
		t.Fatal("schedule for a different architecture instance accepted")
	}
}

func TestPokePeekRegisters(t *testing.T) {
	_, m := machine(t)
	m.Reset()
	if err := m.PokeRegister(2, 3, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := m.PeekRegister(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xBEEF {
		t.Fatalf("peek %#x, want 0xBEEF", v)
	}
	if err := m.PokeRegister(2, 99, 1); err == nil {
		t.Fatal("out-of-range register accepted")
	}
	if err := m.PokeRegister(0, 0, 1); err == nil {
		t.Fatal("non-RF component accepted")
	}
}

func TestDatapathExportsToVerilog(t *testing.T) {
	_, m := machine(t)
	var sb strings.Builder
	if err := m.N.WriteVerilog(&sb, "tta_datapath"); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	if !strings.Contains(v, "module tta_datapath") || !strings.Contains(v, "endmodule") {
		t.Fatal("malformed Verilog export")
	}
	if got := strings.Count(v, "always @(posedge clk)"); got != len(m.N.FFs) {
		t.Fatalf("%d always blocks for %d flip-flops", got, len(m.N.FFs))
	}
	t.Logf("full datapath exports to %d bytes of Verilog", len(v))
}
