package rtl

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/netlist"
	"repro/internal/sched"
	"repro/internal/tta"
)

// Gate-level instruction decode: the paper's figure 4 — "the control unit
// is actually distributed over the sockets", each socket matching the
// instruction's ID fields with a comparator. BuildDecoded assembles a
// decoder netlist whose only inputs are the raw instruction-word bits and
// whose outputs are every control signal of the datapath Machine: socket
// load enables (ID-match ORs), bus-source selects (the source-ID field
// itself), register addresses and opcode fields (match-gated muxes).
//
// A DecodedMachine co-simulates the two gate-level netlists: per cycle,
// the raw word drives the decoder; the decoder's outputs drive the
// datapath; the datapath clocks with behavioural memory. The field
// extraction from the word is pure wiring (bit slicing), so every logic
// level of the control path is real gates.

// DecodedMachine is a datapath plus its gate-level instruction decoder.
type DecodedMachine struct {
	M      *Machine
	Format *isa.Format
	Dec    *netlist.Netlist

	decSt    *netlist.State
	wordNets []netlist.Net
	outPorts map[string]netlist.Port
}

// BuildDecoded assembles the datapath and its instruction decoder.
func BuildDecoded(m *Machine) (*DecodedMachine, error) {
	f, err := isa.NewFormat(m.Arch)
	if err != nil {
		return nil, err
	}
	// The decode relies on the instruction format's source-socket IDs
	// coinciding with the datapath's bus-mux codes (both enumerate output
	// ports in component order); verify rather than assume.
	for ref, code := range m.srcIndex {
		if f.SrcID(isa.SocketRef{Comp: ref.Comp, Port: ref.Port}) != code {
			return nil, fmt.Errorf("rtl: source-socket numbering diverged for %v", ref)
		}
	}
	b := netlist.NewBuilder(m.Arch.Name + "_decode")
	word := b.InputBus("word", f.InstrBits())

	// Field extraction (wiring only).
	type slotNets struct {
		src, dst, srcReg, dstReg, op []netlist.Net
	}
	slots := make([]slotNets, m.Arch.Buses)
	pos := 0
	take := func(n int) []netlist.Net {
		nets := word[pos : pos+n]
		pos += n
		return nets
	}
	for k := 0; k < m.Arch.Buses; k++ {
		slots[k] = slotNets{
			src:    take(f.SrcBits),
			dst:    take(f.DstBits),
			srcReg: take(f.RegBits),
			dstReg: take(f.RegBits),
			op:     take(f.OpBits),
		}
	}
	// The immediate field is forwarded verbatim.
	immField := take(m.Arch.Width)
	b.OutputBus("imm", immField)

	// Per-bus source select: the source-ID field is the bus-mux code
	// (identical enumeration in isa and rtl), zero-extended to the
	// datapath's select width.
	zero := b.Const(false)
	for k := 0; k < m.Arch.Buses; k++ {
		sel := make([]netlist.Net, m.selBits)
		for i := range sel {
			if i < len(slots[k].src) {
				sel[i] = slots[k].src[i]
			} else {
				sel[i] = zero
			}
		}
		b.OutputBus(fmt.Sprintf("bus%d_sel", k), sel)
	}

	// idMatch emits the socket comparator: field == constant id.
	idMatch := func(field []netlist.Net, id int) netlist.Net {
		terms := make([]netlist.Net, len(field))
		for i, bit := range field {
			if id>>uint(i)&1 == 1 {
				terms[i] = bit
			} else {
				terms[i] = b.Not(bit)
			}
		}
		return b.And(terms...)
	}
	// gatedOr builds OR_k(match_k AND field_k[bit]) for each output bit —
	// a one-hot mux (at most one slot addresses a given socket per word).
	gatedOr := func(matches []netlist.Net, fields [][]netlist.Net, width int) []netlist.Net {
		out := make([]netlist.Net, width)
		for bit := 0; bit < width; bit++ {
			terms := make([]netlist.Net, len(matches))
			for k, mk := range matches {
				if bit < len(fields[k]) {
					terms[k] = b.And(mk, fields[k][bit])
				} else {
					terms[k] = zero
				}
			}
			out[bit] = b.Or(terms...)
		}
		return out
	}

	// Destination sockets: load enables, bus-of selects, write addresses,
	// opcode/store fields.
	busIdxFields := make([][]netlist.Net, m.Arch.Buses)
	for k := range busIdxFields {
		// The constant slot index, as wiring to constants.
		idx := make([]netlist.Net, m.busBits)
		one := b.Const(true)
		for bIt := 0; bIt < m.busBits; bIt++ {
			if k>>uint(bIt)&1 == 1 {
				idx[bIt] = one
			} else {
				idx[bIt] = zero
			}
		}
		busIdxFields[k] = idx
	}
	for di, ref := range f.DstRefs() {
		id := di + 1
		key := portKey{ref.Comp, ref.Port}
		matches := make([]netlist.Net, m.Arch.Buses)
		for k := 0; k < m.Arch.Buses; k++ {
			matches[k] = idMatch(slots[k].dst, id)
		}
		b.Output(fmt.Sprintf("ld_c%dp%d", key.Comp, key.Port), b.Or(matches...))
		b.OutputBus(fmt.Sprintf("busof_c%dp%d", key.Comp, key.Port),
			gatedOr(matches, busIdxFields, m.busBits))
		c := &m.Arch.Components[ref.Comp]
		if c.Kind == tta.RF {
			regFields := make([][]netlist.Net, m.Arch.Buses)
			for k := range regFields {
				regFields[k] = slots[k].dstReg
			}
			b.OutputBus(fmt.Sprintf("waddr_c%dp%d", key.Comp, key.Port),
				gatedOr(matches, regFields, bitsFor(c.NumRegs)))
		}
		if c.Ports[ref.Port].Role == tta.Trigger {
			opFields := make([][]netlist.Net, m.Arch.Buses)
			for k := range opFields {
				opFields[k] = slots[k].op
			}
			switch c.Kind {
			case tta.ALU, tta.CMP:
				b.OutputBus(fmt.Sprintf("op_c%d", ref.Comp), gatedOr(matches, opFields, 3))
			case tta.LDST:
				// Store flag: op bit 0 of the matching slot.
				stFields := make([][]netlist.Net, m.Arch.Buses)
				for k := range stFields {
					stFields[k] = slots[k].op[:1]
				}
				b.OutputBus(fmt.Sprintf("st_c%d", ref.Comp), gatedOr(matches, stFields, 1))
			}
		}
	}
	// Source sockets of register files: read addresses.
	for si, ref := range f.SrcRefs() {
		c := &m.Arch.Components[ref.Comp]
		if c.Kind != tta.RF {
			continue
		}
		id := si + 1
		matches := make([]netlist.Net, m.Arch.Buses)
		for k := 0; k < m.Arch.Buses; k++ {
			matches[k] = idMatch(slots[k].src, id)
		}
		regFields := make([][]netlist.Net, m.Arch.Buses)
		for k := range regFields {
			regFields[k] = slots[k].srcReg
		}
		b.OutputBus(fmt.Sprintf("raddr_c%dp%d", ref.Comp, ref.Port),
			gatedOr(matches, regFields, bitsFor(c.NumRegs)))
	}

	dec, err := b.Build()
	if err != nil {
		return nil, err
	}
	d := &DecodedMachine{
		M:        m,
		Format:   f,
		Dec:      dec,
		decSt:    netlist.NewState(dec),
		outPorts: map[string]netlist.Port{},
	}
	wp, ok := dec.InputPort("word")
	if !ok {
		return nil, fmt.Errorf("rtl: decoder lost its word port")
	}
	d.wordNets = wp.Nets
	for _, p := range dec.OutputPorts {
		d.outPorts[p.Name] = p
	}
	return d, nil
}

// stepWord drives one raw instruction word through decoder and datapath.
func (d *DecodedMachine) stepWord(limbs []uint64) {
	// Word bits into the decoder (pure wiring beyond this point).
	for i, net := range d.wordNets {
		bit := uint64(0)
		if i/64 < len(limbs) {
			bit = limbs[i/64] >> uint(i%64) & 1
		}
		if bit == 1 {
			d.decSt.SetInput(net, ^uint64(0))
		} else {
			d.decSt.SetInput(net, 0)
		}
	}
	d.decSt.Eval()

	// Decoder outputs onto the datapath's control inputs.
	m := d.M
	read := func(name string) uint64 {
		return d.decSt.OutputBusValue(d.outPorts[name], 0)
	}
	for k := range m.busSel {
		m.st.SetInputBus(m.busSel[k], read(fmt.Sprintf("bus%d_sel", k)))
	}
	m.st.SetInputBus(m.imm, read("imm"))
	for key, p := range m.ldIn {
		m.st.SetInputBus(p, read(fmt.Sprintf("ld_c%dp%d", key.Comp, key.Port)))
	}
	for key, p := range m.busOf {
		m.st.SetInputBus(p, read(fmt.Sprintf("busof_c%dp%d", key.Comp, key.Port)))
	}
	for ci, p := range m.opIn {
		m.st.SetInputBus(p, read(fmt.Sprintf("op_c%d", ci)))
	}
	for ci, p := range m.stIn {
		m.st.SetInputBus(p, read(fmt.Sprintf("st_c%d", ci)))
	}
	for key, p := range m.raddr {
		m.st.SetInputBus(p, read(fmt.Sprintf("raddr_c%dp%d", key.Comp, key.Port)))
	}
	for key, p := range m.waddr {
		m.st.SetInputBus(p, read(fmt.Sprintf("waddr_c%dp%d", key.Comp, key.Port)))
	}
	m.clockWithMemory()
}

// RunWords executes an encoded program entirely through gates: the decoder
// consumes raw words, the datapath consumes the decoder's outputs.
func (d *DecodedMachine) RunWords(p *isa.Program, inputLoc map[int]sched.RegLoc, inputs []uint64,
	outputLoc []sched.RegLoc, mem map[uint64]uint64) ([]uint64, error) {
	if p.Format.Arch != d.M.Arch {
		return nil, fmt.Errorf("rtl: program encoded for a different architecture instance")
	}
	m := d.M
	m.Reset()
	for k, v := range mem {
		m.Mem[k] = v
	}
	for i := 0; i < len(inputs); i++ {
		loc, ok := inputLoc[i]
		if !ok {
			return nil, fmt.Errorf("rtl: no seed location for input %d", i)
		}
		if err := m.PokeRegister(loc.RF, loc.Reg, inputs[i]); err != nil {
			return nil, err
		}
	}
	for _, word := range p.Words {
		d.stepWord(word)
	}
	d.stepWord(nil) // drain: the last register write lands after the word
	d.stepWord(nil)
	out := make([]uint64, len(outputLoc))
	for i, loc := range outputLoc {
		v, err := m.PeekRegister(loc.RF, loc.Reg)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
