// Package rtl assembles a complete gate-level TTA datapath from the
// component library — function units with their hybrid-pipeline registers,
// register files, bus multiplexers — and executes scheduled move programs
// on it cycle by cycle. It is the lowest-level validation tier: the same
// schedule the behavioural simulator (internal/sim) runs is driven into
// actual gates, and the results must agree bit for bit.
//
// The distributed control of a real TTA (socket ID decode, figure 4) is
// applied as per-cycle control inputs derived from the move program — the
// software equivalent of the instruction-decode path whose encoding is
// exercised separately by internal/isa. Immediate values drive the buses
// directly (the instruction's immediate field), and the data memory is
// co-simulated behaviourally through the LD/ST unit's memory port.
//
// Structure: every bus is a forward-declared wire driven by a select mux
// over all output sockets (component result registers, register-file read
// ports, the PC, the immediate field); every component input port samples
// a bus through its own bus-select mux. The apparent bus->component->bus
// cycle is broken by the O/T/R registers inside every component, which the
// netlist levelization verifies.
package rtl

import (
	"fmt"

	"repro/internal/gatelib"
	"repro/internal/netlist"
	"repro/internal/program"
	"repro/internal/sched"
	"repro/internal/tta"
)

// portKey identifies a component port in the architecture.
type portKey struct {
	Comp int
	Port int
}

// Machine is an assembled gate-level datapath ready to execute move
// programs.
type Machine struct {
	Arch *tta.Architecture
	N    *netlist.Netlist
	Mem  map[uint64]uint64

	st *netlist.State

	width   int
	selBits int
	busBits int

	busSel []netlist.Port
	imm    netlist.Port
	ldIn   map[portKey]netlist.Port
	busOf  map[portKey]netlist.Port
	opIn   map[int]netlist.Port
	stIn   map[int]netlist.Port
	raddr  map[portKey]netlist.Port
	waddr  map[portKey]netlist.Port

	memRD   map[int]netlist.Port
	memAddr map[int]netlist.Port
	memWD   map[int]netlist.Port
	memWE   map[int]netlist.Port

	srcIndex map[portKey]int
	immIndex int

	rfFF map[int][][]int // [comp][reg][bit] -> flip-flop index

	// Cycles counts clocks since reset.
	Cycles int
}

func bitsFor(n int) int {
	b := 1
	for 1<<uint(b) < n {
		b++
	}
	return b
}

// Build assembles the datapath netlist for an architecture.
func Build(arch *tta.Architecture, lib *gatelib.Library) (*Machine, error) {
	if err := arch.Validate(); err != nil {
		return nil, err
	}
	if lib == nil {
		lib = gatelib.NewLibrary()
	}
	m := &Machine{
		Arch:     arch,
		Mem:      map[uint64]uint64{},
		width:    arch.Width,
		ldIn:     map[portKey]netlist.Port{},
		busOf:    map[portKey]netlist.Port{},
		opIn:     map[int]netlist.Port{},
		stIn:     map[int]netlist.Port{},
		raddr:    map[portKey]netlist.Port{},
		waddr:    map[portKey]netlist.Port{},
		memRD:    map[int]netlist.Port{},
		memAddr:  map[int]netlist.Port{},
		memWD:    map[int]netlist.Port{},
		memWE:    map[int]netlist.Port{},
		srcIndex: map[portKey]int{},
		rfFF:     map[int][][]int{},
	}
	b := netlist.NewBuilder(arch.Name + "_rtl")

	// Source enumeration (bus-mux select codes).
	var srcKeys []portKey
	for ci := range arch.Components {
		for _, pi := range arch.Components[ci].OutputPorts() {
			m.srcIndex[portKey{ci, pi}] = len(srcKeys) + 1
			srcKeys = append(srcKeys, portKey{ci, pi})
		}
	}
	m.immIndex = len(srcKeys) + 1
	m.selBits = bitsFor(m.immIndex + 1)
	m.busBits = bitsFor(arch.Buses)

	// Control inputs.
	busSelNets := make([][]netlist.Net, arch.Buses)
	for k := 0; k < arch.Buses; k++ {
		busSelNets[k] = b.InputBus(fmt.Sprintf("bus%d_sel", k), m.selBits)
	}
	immNets := b.InputBus("imm", m.width)

	// Forward-declared bus wires.
	buses := make([][]netlist.Net, arch.Buses)
	for k := range buses {
		buses[k] = b.WireBus(fmt.Sprintf("bus%d", k), m.width)
	}

	// busMux builds the per-input-port data mux over the buses.
	zero := b.Const(false)
	busData := func(sel []netlist.Net) []netlist.Net {
		out := make([]netlist.Net, m.width)
		for bit := 0; bit < m.width; bit++ {
			col := make([]netlist.Net, arch.Buses)
			for k := 0; k < arch.Buses; k++ {
				col[k] = buses[k][bit]
			}
			out[bit] = muxTree(b, sel, col, zero)
		}
		return out
	}

	// Instantiate components.
	srcNets := map[portKey][]netlist.Net{}
	for ci := range arch.Components {
		c := &arch.Components[ci]
		name := fmt.Sprintf("c%d", ci)
		switch c.Kind {
		case tta.ALU, tta.CMP, tta.LDST:
			ins := c.InputPorts()
			oKey := portKey{ci, ins[0]}
			tKey := portKey{ci, ins[1]}
			ldO, busO := m.declPortCtl(b, oKey)
			ldT, busT := m.declPortCtl(b, tKey)
			inputs := map[string][]netlist.Net{
				"bus_o":  busData(busO),
				"bus_t":  busData(busT),
				"load_o": {ldO},
				"load_t": {ldT},
			}
			var comp *gatelib.Component
			var err error
			switch c.Kind {
			case tta.ALU:
				comp, err = lib.ALU(gatelib.ALUConfig{Width: m.width, Adder: c.Adder})
				if err == nil {
					inputs["op_in"] = b.InputBus(fmt.Sprintf("op_c%d", ci), gatelib.ALUOpBits)
					m.opIn[ci], _ = portOfBuilder(b, fmt.Sprintf("op_c%d", ci))
				}
			case tta.CMP:
				comp, err = lib.CMP(m.width)
				if err == nil {
					inputs["op_in"] = b.InputBus(fmt.Sprintf("op_c%d", ci), gatelib.CMPOpBits)
					m.opIn[ci], _ = portOfBuilder(b, fmt.Sprintf("op_c%d", ci))
				}
			default:
				comp, err = lib.LDST(m.width)
				if err == nil {
					st := b.InputBus(fmt.Sprintf("st_c%d", ci), 1)
					inputs["is_store"] = st
					m.stIn[ci], _ = portOfBuilder(b, fmt.Sprintf("st_c%d", ci))
					rd := b.InputBus(fmt.Sprintf("mem_rdata_c%d", ci), m.width)
					inputs["mem_rdata"] = rd
					m.memRD[ci], _ = portOfBuilder(b, fmt.Sprintf("mem_rdata_c%d", ci))
				}
			}
			if err != nil {
				return nil, err
			}
			outs, err := netlist.Instantiate(b, comp.Seq, name, inputs)
			if err != nil {
				return nil, err
			}
			srcNets[portKey{ci, c.OutputPorts()[0]}] = outs["r_out"]
			if c.Kind == tta.LDST {
				b.OutputBus(fmt.Sprintf("mem_addr_c%d", ci), outs["mem_addr"])
				b.OutputBus(fmt.Sprintf("mem_wdata_c%d", ci), outs["mem_wdata"])
				b.OutputBus(fmt.Sprintf("mem_we_c%d", ci), outs["mem_we"])
			}
		case tta.RF:
			cfg := gatelib.RFConfig{Width: m.width, NumRegs: c.NumRegs, NumIn: c.NumIn, NumOut: c.NumOut}
			comp, err := lib.RF(cfg)
			if err != nil {
				return nil, err
			}
			ab := bitsFor(c.NumRegs)
			inputs := map[string][]netlist.Net{}
			for j, pi := range c.InputPorts() {
				key := portKey{ci, pi}
				we, busW := m.declPortCtl(b, key)
				inputs[fmt.Sprintf("we%d", j)] = []netlist.Net{we}
				inputs[fmt.Sprintf("wdata%d", j)] = busData(busW)
				wa := b.InputBus(fmt.Sprintf("waddr_c%dp%d", ci, pi), ab)
				inputs[fmt.Sprintf("waddr%d", j)] = wa
				m.waddr[key], _ = portOfBuilder(b, fmt.Sprintf("waddr_c%dp%d", ci, pi))
			}
			for j, pi := range c.OutputPorts() {
				key := portKey{ci, pi}
				ra := b.InputBus(fmt.Sprintf("raddr_c%dp%d", ci, pi), ab)
				inputs[fmt.Sprintf("raddr%d", j)] = ra
				m.raddr[key], _ = portOfBuilder(b, fmt.Sprintf("raddr_c%dp%d", ci, pi))
			}
			outs, err := netlist.Instantiate(b, comp.Seq, name, inputs)
			if err != nil {
				return nil, err
			}
			for j, pi := range c.OutputPorts() {
				srcNets[portKey{ci, pi}] = outs[fmt.Sprintf("rdata%d", j)]
			}
		case tta.PC:
			comp, err := lib.PC(m.width)
			if err != nil {
				return nil, err
			}
			ins := c.InputPorts()
			key := portKey{ci, ins[0]}
			ld, busT := m.declPortCtl(b, key)
			inputs := map[string][]netlist.Net{
				"target": busData(busT),
				"branch": {ld},
				"stall":  {zero},
			}
			outs, err := netlist.Instantiate(b, comp.Seq, name, inputs)
			if err != nil {
				return nil, err
			}
			srcNets[portKey{ci, c.OutputPorts()[0]}] = outs["pc_out"]
		case tta.IMM:
			// The immediate field drives the bus mux directly; the unit's
			// source code maps to the imm input.
			srcNets[portKey{ci, c.OutputPorts()[0]}] = immNets
		}
	}

	// Drive the buses: select mux over all sources (code 0 = zero).
	for k := 0; k < arch.Buses; k++ {
		for bit := 0; bit < m.width; bit++ {
			col := make([]netlist.Net, m.immIndex+1)
			col[0] = zero
			for _, key := range srcKeys {
				col[m.srcIndex[key]] = srcNets[key][bit]
			}
			col[m.immIndex] = immNets[bit]
			b.Drive(buses[k][bit], muxTree(b, busSelNets[k], col, zero))
		}
		b.OutputBus(fmt.Sprintf("bus%d_out", k), buses[k])
	}

	n, err := b.Build()
	if err != nil {
		return nil, err
	}
	m.N = n
	m.st = netlist.NewState(n)

	// Resolve the declared control-input ports on the built netlist.
	resolve := func(name string) (netlist.Port, error) {
		p, ok := n.InputPort(name)
		if !ok {
			return netlist.Port{}, fmt.Errorf("rtl: lost input port %q", name)
		}
		return p, nil
	}
	m.busSel = make([]netlist.Port, arch.Buses)
	for k := range m.busSel {
		if m.busSel[k], err = resolve(fmt.Sprintf("bus%d_sel", k)); err != nil {
			return nil, err
		}
	}
	if m.imm, err = resolve("imm"); err != nil {
		return nil, err
	}
	for key := range m.ldIn {
		if m.ldIn[key], err = resolve(fmt.Sprintf("ld_c%dp%d", key.Comp, key.Port)); err != nil {
			return nil, err
		}
	}
	for key := range m.busOf {
		if m.busOf[key], err = resolve(fmt.Sprintf("busof_c%dp%d", key.Comp, key.Port)); err != nil {
			return nil, err
		}
	}
	for ci := range m.opIn {
		if m.opIn[ci], err = resolve(fmt.Sprintf("op_c%d", ci)); err != nil {
			return nil, err
		}
	}
	for ci := range m.stIn {
		if m.stIn[ci], err = resolve(fmt.Sprintf("st_c%d", ci)); err != nil {
			return nil, err
		}
	}
	for key := range m.raddr {
		if m.raddr[key], err = resolve(fmt.Sprintf("raddr_c%dp%d", key.Comp, key.Port)); err != nil {
			return nil, err
		}
	}
	for key := range m.waddr {
		if m.waddr[key], err = resolve(fmt.Sprintf("waddr_c%dp%d", key.Comp, key.Port)); err != nil {
			return nil, err
		}
	}
	for ci := range m.memRD {
		if m.memRD[ci], err = resolve(fmt.Sprintf("mem_rdata_c%d", ci)); err != nil {
			return nil, err
		}
		op, ok := n.OutputPort(fmt.Sprintf("mem_addr_c%d", ci))
		if !ok {
			return nil, fmt.Errorf("rtl: lost mem_addr port")
		}
		m.memAddr[ci] = op
		if op, ok = n.OutputPort(fmt.Sprintf("mem_wdata_c%d", ci)); !ok {
			return nil, fmt.Errorf("rtl: lost mem_wdata port")
		}
		m.memWD[ci] = op
		if op, ok = n.OutputPort(fmt.Sprintf("mem_we_c%d", ci)); !ok {
			return nil, fmt.Errorf("rtl: lost mem_we port")
		}
		m.memWE[ci] = op
	}

	// Register-file flip-flop index for poking/peeking.
	for ci := range arch.Components {
		c := &arch.Components[ci]
		if c.Kind != tta.RF {
			continue
		}
		cfg := gatelib.RFConfig{Width: m.width, NumRegs: c.NumRegs, NumIn: c.NumIn, NumOut: c.NumOut}
		regs := make([][]int, c.NumRegs)
		for r := 0; r < c.NumRegs; r++ {
			regs[r] = make([]int, m.width)
			for bit := 0; bit < m.width; bit++ {
				ffName := fmt.Sprintf("c%d/%s.r%d[%d]", ci, cfg.String(), r, bit)
				idx, ok := n.FFByName(ffName)
				if !ok {
					return nil, fmt.Errorf("rtl: flip-flop %q not found", ffName)
				}
				regs[r][bit] = idx
			}
		}
		m.rfFF[ci] = regs
	}
	return m, nil
}

// declPortCtl declares the load-enable and bus-select inputs of one
// component input port.
func (m *Machine) declPortCtl(b *netlist.Builder, key portKey) (netlist.Net, []netlist.Net) {
	ld := b.Input(fmt.Sprintf("ld_c%dp%d", key.Comp, key.Port))
	sel := b.InputBus(fmt.Sprintf("busof_c%dp%d", key.Comp, key.Port), m.busBits)
	m.ldIn[key] = netlist.Port{}  // placeholder; resolved after Build
	m.busOf[key] = netlist.Port{} // placeholder
	return ld, sel
}

// portOfBuilder is a placeholder marker; real resolution happens after
// Build (the builder does not expose ports).
func portOfBuilder(_ *netlist.Builder, _ string) (netlist.Port, bool) {
	return netlist.Port{}, true
}

// muxTree selects entries[sel] (binary select, LSB-first), with `fill` for
// out-of-range codes.
func muxTree(b *netlist.Builder, sel []netlist.Net, entries []netlist.Net, fill netlist.Net) netlist.Net {
	size := 1 << uint(len(sel))
	cur := make([]netlist.Net, size)
	for i := range cur {
		if i < len(entries) {
			cur[i] = entries[i]
		} else {
			cur[i] = fill
		}
	}
	for level := 0; level < len(sel); level++ {
		nxt := make([]netlist.Net, len(cur)/2)
		for i := range nxt {
			nxt[i] = b.Mux(sel[level], cur[2*i], cur[2*i+1])
		}
		cur = nxt
	}
	return cur[0]
}

// Reset returns all state to power-on values and clears memory.
func (m *Machine) Reset() {
	m.st.ResetFFs()
	m.Mem = map[uint64]uint64{}
	m.Cycles = 0
}

// PokeRegister writes a register-file register directly (pre-run input
// seeding, mirroring sched.Result.InputLoc).
func (m *Machine) PokeRegister(comp, reg int, v uint64) error {
	regs, ok := m.rfFF[comp]
	if !ok || reg < 0 || reg >= len(regs) {
		return fmt.Errorf("rtl: no register %d in component %d", reg, comp)
	}
	for bit, ff := range regs[reg] {
		m.st.SetFF(ff, v>>uint(bit)&1)
	}
	return nil
}

// PeekRegister reads a register-file register.
func (m *Machine) PeekRegister(comp, reg int) (uint64, error) {
	regs, ok := m.rfFF[comp]
	if !ok || reg < 0 || reg >= len(regs) {
		return 0, fmt.Errorf("rtl: no register %d in component %d", reg, comp)
	}
	var v uint64
	for bit, ff := range regs[reg] {
		v |= (m.st.FFWord(ff) & 1) << uint(bit)
	}
	return v, nil
}

// hwOpcode derives the opcode control value for a trigger move.
func hwOpcode(g *program.Graph, mv sched.Move) (op int, isStore bool, err error) {
	switch mv.Spill {
	case sched.SpillStoreData:
		return 0, true, nil
	case sched.SpillLoadTrig:
		return 0, false, nil
	case sched.SpillNone:
	default:
		return 0, false, fmt.Errorf("rtl: spill kind %d is not a trigger", mv.Spill)
	}
	opc := g.Ops[mv.Op].Op
	switch opc {
	case program.Add:
		return gatelib.ALUOpAdd, false, nil
	case program.Sub:
		return gatelib.ALUOpSub, false, nil
	case program.Sll:
		return gatelib.ALUOpSll, false, nil
	case program.Srl:
		return gatelib.ALUOpSrl, false, nil
	case program.And:
		return gatelib.ALUOpAnd, false, nil
	case program.Or:
		return gatelib.ALUOpOr, false, nil
	case program.Xor:
		return gatelib.ALUOpXor, false, nil
	case program.Eq, program.Ne, program.Ltu, program.Lts,
		program.Geu, program.Ges, program.Gtu, program.Gts:
		return int(opc - program.Eq), false, nil
	case program.Load:
		return 0, false, nil
	case program.Store:
		return 0, true, nil
	default:
		return 0, false, fmt.Errorf("rtl: opcode %s not executable", opc)
	}
}

// RunSchedule drives a complete move program into the gates and returns
// the program outputs read from the register files.
func (m *Machine) RunSchedule(res *sched.Result, inputs []uint64, mem map[uint64]uint64) ([]uint64, error) {
	if res.Arch != m.Arch {
		return nil, fmt.Errorf("rtl: schedule was built for a different architecture")
	}
	m.Reset()
	for k, v := range mem {
		m.Mem[k] = v
	}
	// Seed inputs.
	inIdx := 0
	for i, op := range res.Graph.Ops {
		if op.Op != program.Input {
			continue
		}
		if inIdx >= len(inputs) {
			return nil, fmt.Errorf("rtl: %d inputs supplied, program needs more", len(inputs))
		}
		loc := res.InputLoc[program.ValueID(i)]
		if err := m.PokeRegister(loc.RF, loc.Reg, inputs[inIdx]); err != nil {
			return nil, err
		}
		inIdx++
	}
	if inIdx != len(inputs) {
		return nil, fmt.Errorf("rtl: %d inputs supplied, program declares %d", len(inputs), inIdx)
	}

	byCycle := map[int][]ctl{}
	last := 0
	for _, mv := range res.Moves {
		role := m.Arch.Components[mv.Dst.Comp].Ports[mv.Dst.Port].Role
		c, err := ctlOfMove(res.Graph, mv, role)
		if err != nil {
			return nil, err
		}
		byCycle[mv.Cycle] = append(byCycle[mv.Cycle], c)
		if mv.Cycle > last {
			last = mv.Cycle
		}
	}
	for cyc := 0; cyc <= last+2; cyc++ {
		if err := m.step(byCycle[cyc]); err != nil {
			return nil, fmt.Errorf("rtl: cycle %d: %w", cyc, err)
		}
	}

	out := make([]uint64, len(res.Graph.Outputs))
	for i, o := range res.Graph.Outputs {
		loc, ok := res.RegAlloc[o]
		if !ok {
			return nil, fmt.Errorf("rtl: output %d never written", o)
		}
		v, err := m.PeekRegister(loc.RF, loc.Reg)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// ctl is one decoded transport of a cycle: the architectural content of a
// move slot, independent of whether it came from a scheduler move or a
// decoded instruction word.
type ctl struct {
	src     portKey
	dst     portKey
	srcReg  int
	dstReg  int
	imm     uint64
	trigger bool
	op      int
	isStore bool
}

// ctlOfMove lowers a scheduler move (plus its graph, for the opcode) to a
// control record.
func ctlOfMove(g *program.Graph, mv sched.Move, dstRole tta.PortRole) (ctl, error) {
	c := ctl{
		src:    portKey{mv.Src.Comp, mv.Src.Port},
		dst:    portKey{mv.Dst.Comp, mv.Dst.Port},
		srcReg: mv.Src.Reg,
		dstReg: mv.Dst.Reg,
		imm:    mv.Src.Imm,
	}
	if dstRole == tta.Trigger {
		c.trigger = true
		op, isStore, err := hwOpcode(g, mv)
		if err != nil {
			return ctl{}, err
		}
		c.op = op
		c.isStore = isStore
	}
	return c, nil
}

// step applies one cycle's transports as control signals and clocks the
// datapath, co-simulating the data memory.
func (m *Machine) step(ctls []ctl) error {
	st := m.st
	// Default idle controls.
	for k := range m.busSel {
		st.SetInputBus(m.busSel[k], 0)
	}
	st.SetInputBus(m.imm, 0)
	for _, p := range m.ldIn {
		st.SetInputBus(p, 0)
	}
	immUsed := false
	for k, c := range ctls {
		if k >= len(m.busSel) {
			return fmt.Errorf("more transports than buses")
		}
		// Source side.
		code, ok := m.srcIndex[c.src]
		if !ok {
			return fmt.Errorf("transport %+v reads unknown source socket", c)
		}
		srcComp := &m.Arch.Components[c.src.Comp]
		if srcComp.Kind == tta.IMM {
			if immUsed {
				return fmt.Errorf("two immediate transports in one cycle (single shared field)")
			}
			immUsed = true
			code = m.immIndex
			st.SetInputBus(m.imm, c.imm)
		}
		if srcComp.Kind == tta.RF {
			st.SetInputBus(m.raddr[c.src], uint64(c.srcReg))
		}
		st.SetInputBus(m.busSel[k], uint64(code))
		// Destination side.
		ld, ok := m.ldIn[c.dst]
		if !ok {
			return fmt.Errorf("transport %+v writes unknown destination socket", c)
		}
		st.SetInputBus(ld, 1)
		st.SetInputBus(m.busOf[c.dst], uint64(k))
		dstComp := &m.Arch.Components[c.dst.Comp]
		if dstComp.Kind == tta.RF {
			st.SetInputBus(m.waddr[c.dst], uint64(c.dstReg))
		}
		if c.trigger {
			switch dstComp.Kind {
			case tta.ALU, tta.CMP:
				st.SetInputBus(m.opIn[c.dst.Comp], uint64(c.op))
			case tta.LDST:
				v := uint64(0)
				if c.isStore {
					v = 1
				}
				st.SetInputBus(m.stIn[c.dst.Comp], v)
			}
		}
	}
	m.clockWithMemory()
	return nil
}

// clockWithMemory settles the combinational logic, services the LD/ST
// units' memory ports behaviourally, and advances one clock.
func (m *Machine) clockWithMemory() {
	st := m.st
	st.Eval()
	for ci, rd := range m.memRD {
		addr := st.OutputBusValue(m.memAddr[ci], 0)
		st.SetInputBus(rd, m.Mem[addr])
	}
	st.Eval()
	for ci := range m.memRD {
		if st.OutputBusValue(m.memWE[ci], 0) == 1 {
			addr := st.OutputBusValue(m.memAddr[ci], 0)
			m.Mem[addr] = st.OutputBusValue(m.memWD[ci], 0)
		}
	}
	st.Step()
	m.Cycles++
}

// Stats returns the structural summary of the assembled datapath.
func (m *Machine) Stats() netlist.Stats { return m.N.Stats() }
