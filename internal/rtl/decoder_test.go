package rtl

import (
	"math/rand"
	"testing"

	"repro/internal/crypt"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sched"
	"repro/internal/tta"
)

func decodedMachine(t *testing.T) (*tta.Architecture, *DecodedMachine) {
	t.Helper()
	arch, m := machine(t)
	d, err := BuildDecoded(m)
	if err != nil {
		t.Fatal(err)
	}
	return arch, d
}

func TestDecoderNetlistShape(t *testing.T) {
	_, d := decodedMachine(t)
	st := d.Dec.Stats()
	if st.Gates < 100 {
		t.Fatalf("decoder suspiciously small: %s", st)
	}
	if st.FFs != 0 {
		t.Fatalf("decoder must be combinational, has %d FFs", st.FFs)
	}
	if len(d.wordNets) != d.Format.InstrBits() {
		t.Fatalf("word port %d bits, format says %d", len(d.wordNets), d.Format.InstrBits())
	}
	t.Logf("instruction decoder: %s for %d-bit words", st, d.Format.InstrBits())
}

// TestBinaryThroughGateLevelDecode is the deepest end-to-end path in the
// repository: program -> schedule -> instruction words -> gate-level
// decode (socket ID comparators) -> gate-level datapath -> results equal
// to the dataflow reference.
func TestBinaryThroughGateLevelDecode(t *testing.T) {
	arch, d := decodedMachine(t)
	rng := rand.New(rand.NewSource(31))
	binOps := []program.OpCode{
		program.Add, program.Sub, program.And, program.Or, program.Xor,
		program.Sll, program.Srl, program.Ltu, program.Ges,
	}
	for trial := 0; trial < 4; trial++ {
		g := program.NewGraph("dec", 16)
		a := g.In()
		bIn := g.In()
		vals := []program.ValueID{a, bIn, g.ConstV(uint64(rng.Intn(1 << 16)))}
		for i := 0; i < 10; i++ {
			pick := func() program.ValueID { return vals[rng.Intn(len(vals))] }
			switch rng.Intn(6) {
			case 0:
				vals = append(vals, g.Load(pick()))
			case 1:
				g.Store(pick(), pick())
			default:
				vals = append(vals, g.Bin(binOps[rng.Intn(len(binOps))], pick(), pick()))
			}
		}
		g.Output(vals[len(vals)-1])

		res, err := sched.Schedule(g, arch, sched.Options{})
		if err != nil {
			t.Fatal(err)
		}
		prog, err := isa.Encode(res)
		if err != nil {
			t.Fatal(err)
		}
		inputs := []uint64{uint64(rng.Intn(1 << 16)), uint64(rng.Intn(1 << 16))}
		mem := program.Memory{}
		for i := 0; i < 6; i++ {
			mem[uint64(rng.Intn(32))] = uint64(rng.Intn(1 << 16))
		}
		want, err := program.Evaluate(g, inputs, cloneMemP(mem))
		if err != nil {
			t.Fatal(err)
		}
		inputLoc, outputLoc := SeedsOf(res)
		memR := map[uint64]uint64{}
		for k, v := range mem {
			memR[k] = v
		}
		got, err := d.RunWords(prog, inputLoc, inputs, outputLoc, memR)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != want[0] {
			t.Fatalf("trial %d: decoded binary gave %#x, reference %#x", trial, got[0], want[0])
		}
	}
}

func TestCryptSliceThroughGateLevelDecode(t *testing.T) {
	arch, d := decodedMachine(t)
	g := program.NewGraph("feistel_dec", 16)
	rhi := g.In()
	rlo := g.In()
	c := func(v uint64) program.ValueID { return g.ConstV(v) }
	xhi := g.Or(g.Srl(rhi, c(1)), g.Sll(rlo, c(15)))
	idx := g.Xor(g.Srl(xhi, c(10)), c(0x15))
	g.Output(g.Load(g.Add(c(crypt.SPHiBase), idx)))

	res, err := sched.Schedule(g, arch, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := isa.Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []uint64{0xB3B6, 0xA08E}
	want, err := program.Evaluate(g, inputs, crypt.MemoryImage())
	if err != nil {
		t.Fatal(err)
	}
	inputLoc, outputLoc := SeedsOf(res)
	memR := map[uint64]uint64{}
	for k, v := range crypt.MemoryImage() {
		memR[k] = v
	}
	got, err := d.RunWords(prog, inputLoc, inputs, outputLoc, memR)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != want[0] {
		t.Fatalf("decoded crypt slice gave %#x, reference %#x", got[0], want[0])
	}
}

func TestRunWordsRejectsForeignProgram(t *testing.T) {
	_, d := decodedMachine(t)
	other := smallArch(2)
	g := program.NewGraph("x", 16)
	g.Output(g.Add(g.In(), g.In()))
	res, err := sched.Schedule(g, other, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := isa.Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	inLoc, outLoc := SeedsOf(res)
	if _, err := d.RunWords(prog, inLoc, []uint64{1, 2}, outLoc, nil); err == nil {
		t.Fatal("foreign program accepted")
	}
}
