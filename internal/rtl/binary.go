package rtl

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sched"
	"repro/internal/tta"
)

// RunProgram executes an *encoded* instruction stream on the gate-level
// datapath: each raw word is decoded back into move slots (exactly what
// the distributed socket decode of a real TTA does) and applied as the
// cycle's control signals. Combined with internal/isa this closes the
// loop — binaries in, register-file results out.
//
// Register seeding and output extraction still come from the schedule's
// allocation maps (inputLoc/regAlloc), which a real toolchain would emit
// as the program's calling convention.
func (m *Machine) RunProgram(p *isa.Program, inputLoc map[int]sched.RegLoc, inputs []uint64,
	outputLoc []sched.RegLoc, mem map[uint64]uint64) ([]uint64, error) {
	if p.Format.Arch != m.Arch {
		return nil, fmt.Errorf("rtl: program encoded for a different architecture instance")
	}
	m.Reset()
	for k, v := range mem {
		m.Mem[k] = v
	}
	for i := 0; i < len(inputs); i++ {
		loc, ok := inputLoc[i]
		if !ok {
			return nil, fmt.Errorf("rtl: no seed location for input %d", i)
		}
		if err := m.PokeRegister(loc.RF, loc.Reg, inputs[i]); err != nil {
			return nil, err
		}
	}
	for wi, word := range p.Words {
		ins, err := p.Format.Decode(word, wi)
		if err != nil {
			return nil, err
		}
		var ctls []ctl
		for _, s := range ins.Slots {
			if !s.Valid {
				continue
			}
			c := ctl{
				src:    portKey{s.Src.Comp, s.Src.Port},
				dst:    portKey{s.Dst.Comp, s.Dst.Port},
				srcReg: s.SrcReg,
				dstReg: s.DstReg,
				imm:    ins.Imm,
			}
			if m.Arch.Components[s.Dst.Comp].Ports[s.Dst.Port].Role == tta.Trigger {
				c.trigger = true
				c.op = s.Op & 7
				c.isStore = s.Op&8 != 0 && s.Op&1 == 1
			}
			ctls = append(ctls, c)
		}
		if err := m.step(ctls); err != nil {
			return nil, fmt.Errorf("rtl: instruction %d: %w", wi, err)
		}
	}
	// Drain the pipeline: the final register write lands one cycle after
	// the last instruction's transports.
	for i := 0; i < 2; i++ {
		if err := m.step(nil); err != nil {
			return nil, err
		}
	}
	out := make([]uint64, len(outputLoc))
	for i, loc := range outputLoc {
		v, err := m.PeekRegister(loc.RF, loc.Reg)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// SeedsOf extracts the calling-convention maps RunProgram needs from a
// schedule.
func SeedsOf(res *sched.Result) (map[int]sched.RegLoc, []sched.RegLoc) {
	inputLoc := map[int]sched.RegLoc{}
	idx := 0
	for i, op := range res.Graph.Ops {
		if op.Op == program.Input {
			inputLoc[idx] = res.InputLoc[program.ValueID(i)]
			idx++
		}
	}
	var outs []sched.RegLoc
	for _, o := range res.Graph.Outputs {
		outs = append(outs, res.RegAlloc[o])
	}
	return inputLoc, outs
}
