package rtl

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sched"
)

// TestEncodedBinaryRunsOnGates closes the full loop: graph -> schedule ->
// instruction words -> decode -> gate-level execution -> results matching
// the dataflow reference.
func TestEncodedBinaryRunsOnGates(t *testing.T) {
	arch, m := machine(t)
	rng := rand.New(rand.NewSource(11))
	binOps := []program.OpCode{
		program.Add, program.Sub, program.And, program.Or, program.Xor,
		program.Sll, program.Srl, program.Ltu, program.Gts,
	}
	for trial := 0; trial < 5; trial++ {
		g := program.NewGraph("bin", 16)
		a := g.In()
		b := g.In()
		vals := []program.ValueID{a, b, g.ConstV(uint64(rng.Intn(1 << 16)))}
		for i := 0; i < 12; i++ {
			pick := func() program.ValueID { return vals[rng.Intn(len(vals))] }
			switch rng.Intn(6) {
			case 0:
				vals = append(vals, g.Load(pick()))
			default:
				vals = append(vals, g.Bin(binOps[rng.Intn(len(binOps))], pick(), pick()))
			}
		}
		g.Output(vals[len(vals)-1])

		res, err := sched.Schedule(g, arch, sched.Options{})
		if err != nil {
			t.Fatal(err)
		}
		prog, err := isa.Encode(res)
		if err != nil {
			t.Fatal(err)
		}
		inputs := []uint64{uint64(rng.Intn(1 << 16)), uint64(rng.Intn(1 << 16))}
		mem := program.Memory{}
		for i := 0; i < 8; i++ {
			mem[uint64(rng.Intn(32))] = uint64(rng.Intn(1 << 16))
		}
		want, err := program.Evaluate(g, inputs, cloneMemP(mem))
		if err != nil {
			t.Fatal(err)
		}

		inputLoc, outputLoc := SeedsOf(res)
		memR := map[uint64]uint64{}
		for k, v := range mem {
			memR[k] = v
		}
		got, err := m.RunProgram(prog, inputLoc, inputs, outputLoc, memR)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != want[0] {
			t.Fatalf("trial %d: binary on gates gave %#x, reference %#x", trial, got[0], want[0])
		}
	}
}

func cloneMemP(m program.Memory) program.Memory {
	c := program.Memory{}
	for k, v := range m {
		c[k] = v
	}
	return c
}

func TestRunProgramRejectsForeignFormat(t *testing.T) {
	_, m := machine(t)
	other := smallArch(2)
	g := program.NewGraph("x", 16)
	g.Output(g.Add(g.In(), g.In()))
	res, err := sched.Schedule(g, other, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := isa.Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	inLoc, outLoc := SeedsOf(res)
	if _, err := m.RunProgram(prog, inLoc, []uint64{1, 2}, outLoc, nil); err == nil {
		t.Fatal("program for a foreign architecture accepted")
	}
}
