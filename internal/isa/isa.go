// Package isa encodes scheduled move programs into TTA long instruction
// words and back. A TTA instruction (the "move word" of the MOVE
// framework) holds one move slot per bus — each slot addressing a source
// output socket and a destination input socket — plus one shared immediate
// field per Immediate unit. Register-file endpoints carry a register index
// subfield; trigger slots carry the operation code (in real MOVE machines
// the opcode is folded into the trigger socket's address space; the
// explicit field here is equivalent and easier to read in disassembly).
//
// The encoder gives the exploration a code-size axis (instruction width x
// program length) and the decoder proves the format is lossless.
package isa

import (
	"fmt"
	"strings"

	"repro/internal/program"
	"repro/internal/sched"
	"repro/internal/tta"
)

// SocketRef identifies one bus connector (component, port).
type SocketRef struct {
	Comp int
	Port int
}

// Format is the instruction format derived from an architecture.
type Format struct {
	Arch *tta.Architecture

	// Output sockets are move sources; input sockets are destinations.
	// Index 0 of each space is reserved for "no move" (idle slot).
	srcOf map[SocketRef]int
	dstOf map[SocketRef]int
	srcs  []SocketRef // 1-based: srcs[id-1]
	dsts  []SocketRef

	SrcBits int
	DstBits int
	RegBits int
	OpBits  int
	ImmBits int
}

// NewFormat derives the format for an architecture.
func NewFormat(arch *tta.Architecture) (*Format, error) {
	if err := arch.Validate(); err != nil {
		return nil, err
	}
	f := &Format{
		Arch:  arch,
		srcOf: map[SocketRef]int{},
		dstOf: map[SocketRef]int{},
	}
	maxRegs := 2
	for ci := range arch.Components {
		c := &arch.Components[ci]
		if c.NumRegs > maxRegs {
			maxRegs = c.NumRegs
		}
		for pi, p := range c.Ports {
			ref := SocketRef{Comp: ci, Port: pi}
			if p.Role.IsInput() {
				f.dsts = append(f.dsts, ref)
				f.dstOf[ref] = len(f.dsts) // 1-based
			} else {
				f.srcs = append(f.srcs, ref)
				f.srcOf[ref] = len(f.srcs)
			}
		}
	}
	f.SrcBits = bitsFor(len(f.srcs) + 1)
	f.DstBits = bitsFor(len(f.dsts) + 1)
	f.RegBits = bitsFor(maxRegs)
	f.OpBits = 4 // 3-bit FU opcode + the LD/ST store flag
	f.ImmBits = arch.Width
	return f, nil
}

func bitsFor(n int) int {
	b := 1
	for 1<<uint(b) < n {
		b++
	}
	return b
}

// SlotBits is the width of one move slot.
func (f *Format) SlotBits() int {
	return f.SrcBits + f.DstBits + 2*f.RegBits + f.OpBits
}

// SrcRefs returns the source sockets in ID order (socket ID i+1 is
// SrcRefs()[i]; ID 0 is the idle slot).
func (f *Format) SrcRefs() []SocketRef { return f.srcs }

// DstRefs returns the destination sockets in ID order.
func (f *Format) DstRefs() []SocketRef { return f.dsts }

// SrcID returns the source-socket ID of a component port (0 if it is not
// a source).
func (f *Format) SrcID(ref SocketRef) int { return f.srcOf[ref] }

// DstID returns the destination-socket ID of a component port (0 if it is
// not a destination).
func (f *Format) DstID(ref SocketRef) int { return f.dstOf[ref] }

// InstrBits is the width of a full instruction word: one slot per bus plus
// one immediate field per Immediate unit.
func (f *Format) InstrBits() int {
	imms := len(f.Arch.ComponentsOf(tta.IMM))
	return f.Arch.Buses*f.SlotBits() + imms*f.ImmBits
}

// Slot is one decoded move slot.
type Slot struct {
	Valid  bool
	Src    SocketRef
	Dst    SocketRef
	SrcReg int
	DstReg int
	Op     int
}

// Instruction is one decoded long instruction word.
type Instruction struct {
	Cycle int
	Slots []Slot
	Imm   uint64
}

// Program is an encoded move program.
type Program struct {
	Format *Format
	Words  [][]uint64 // raw instruction words, InstrBits wide, LSB-first u64 limbs
	Instrs []Instruction
}

// CodeBits returns the total instruction-memory footprint in bits.
func (p *Program) CodeBits() int { return len(p.Words) * p.Format.InstrBits() }

// opcodeOf derives the slot opcode for a trigger move.
func opcodeOf(g *program.Graph, m sched.Move) (int, error) {
	switch m.Spill {
	case sched.SpillStoreData:
		return 8 | 1, nil // LD/ST, store flag
	case sched.SpillLoadTrig:
		return 8 | 0, nil
	case sched.SpillNone:
	default:
		return 0, fmt.Errorf("isa: spill kind %d is not a trigger", m.Spill)
	}
	op := g.Ops[m.Op].Op
	switch op {
	case program.Add:
		return 0, nil
	case program.Sub:
		return 1, nil
	case program.Sll:
		return 2, nil
	case program.Srl:
		return 3, nil
	case program.And:
		return 4, nil
	case program.Or:
		return 5, nil
	case program.Xor:
		return 6, nil
	case program.Eq, program.Ne, program.Ltu, program.Lts, program.Geu, program.Ges, program.Gtu, program.Gts:
		return int(op - program.Eq), nil
	case program.Load:
		return 8 | 0, nil
	case program.Store:
		return 8 | 1, nil
	default:
		return 0, fmt.Errorf("isa: opcode %s has no trigger encoding", op)
	}
}

// Encode turns a schedule into instruction words, one per cycle from 0 to
// the last move cycle.
func Encode(res *sched.Result) (*Program, error) {
	f, err := NewFormat(res.Arch)
	if err != nil {
		return nil, err
	}
	byCycle := map[int][]sched.Move{}
	last := 0
	for _, m := range res.Moves {
		byCycle[m.Cycle] = append(byCycle[m.Cycle], m)
		if m.Cycle > last {
			last = m.Cycle
		}
	}
	p := &Program{Format: f}
	for cyc := 0; cyc <= last; cyc++ {
		ins := Instruction{Cycle: cyc, Slots: make([]Slot, f.Arch.Buses)}
		immSet := false
		for si, m := range byCycle[cyc] {
			if si >= f.Arch.Buses {
				return nil, fmt.Errorf("isa: cycle %d has more moves than buses", cyc)
			}
			slot := Slot{Valid: true,
				Src: SocketRef{m.Src.Comp, m.Src.Port}, SrcReg: maxInt(m.Src.Reg, 0),
				Dst: SocketRef{m.Dst.Comp, m.Dst.Port}, DstReg: maxInt(m.Dst.Reg, 0)}
			if f.srcOf[slot.Src] == 0 {
				return nil, fmt.Errorf("isa: move %v reads a non-source socket", m)
			}
			if f.dstOf[slot.Dst] == 0 {
				return nil, fmt.Errorf("isa: move %v writes a non-destination socket", m)
			}
			if f.Arch.Components[m.Src.Comp].Kind == tta.IMM {
				if immSet && ins.Imm != m.Src.Imm {
					return nil, fmt.Errorf("isa: cycle %d needs two immediates", cyc)
				}
				ins.Imm = m.Src.Imm
				immSet = true
			}
			if m.Trigger {
				op, err := opcodeOf(res.Graph, m)
				if err != nil {
					return nil, err
				}
				slot.Op = op
			}
			ins.Slots[si] = slot
		}
		p.Instrs = append(p.Instrs, ins)
		p.Words = append(p.Words, f.pack(&ins))
	}
	return p, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// pack serializes an instruction into LSB-first 64-bit limbs.
func (f *Format) pack(ins *Instruction) []uint64 {
	w := newBitWriter((f.InstrBits() + 63) / 64)
	for _, s := range ins.Slots {
		src, dst := 0, 0
		if s.Valid {
			src = f.srcOf[s.Src]
			dst = f.dstOf[s.Dst]
		}
		w.put(uint64(src), f.SrcBits)
		w.put(uint64(dst), f.DstBits)
		w.put(uint64(s.SrcReg), f.RegBits)
		w.put(uint64(s.DstReg), f.RegBits)
		w.put(uint64(s.Op), f.OpBits)
	}
	for range f.Arch.ComponentsOf(tta.IMM) {
		w.put(ins.Imm, f.ImmBits)
	}
	return w.limbs
}

// Decode parses one raw instruction word back into slots.
func (f *Format) Decode(word []uint64, cycle int) (Instruction, error) {
	r := &bitReader{limbs: word}
	ins := Instruction{Cycle: cycle, Slots: make([]Slot, f.Arch.Buses)}
	for si := range ins.Slots {
		src := int(r.get(f.SrcBits))
		dst := int(r.get(f.DstBits))
		srcReg := int(r.get(f.RegBits))
		dstReg := int(r.get(f.RegBits))
		op := int(r.get(f.OpBits))
		if src == 0 && dst == 0 {
			continue // idle slot
		}
		if src == 0 || src > len(f.srcs) || dst == 0 || dst > len(f.dsts) {
			return ins, fmt.Errorf("isa: slot %d has invalid socket ids %d->%d", si, src, dst)
		}
		ins.Slots[si] = Slot{
			Valid: true,
			Src:   f.srcs[src-1], Dst: f.dsts[dst-1],
			SrcReg: srcReg, DstReg: dstReg, Op: op,
		}
	}
	for range f.Arch.ComponentsOf(tta.IMM) {
		ins.Imm = r.get(f.ImmBits)
	}
	return ins, nil
}

// Disassemble renders the program as one line per instruction.
func (p *Program) Disassemble() []string {
	var out []string
	for _, ins := range p.Instrs {
		var parts []string
		for _, s := range ins.Slots {
			if !s.Valid {
				parts = append(parts, "nop")
				continue
			}
			parts = append(parts, p.Format.slotString(s, ins.Imm))
		}
		out = append(out, fmt.Sprintf("%4d: %s", ins.Cycle, strings.Join(parts, " ; ")))
	}
	return out
}

func (f *Format) slotString(s Slot, imm uint64) string {
	src := f.endpointString(s.Src, s.SrcReg, imm)
	dst := f.endpointString(s.Dst, s.DstReg, 0)
	c := &f.Arch.Components[s.Dst.Comp]
	if c.Ports[s.Dst.Port].Role == tta.Trigger {
		return fmt.Sprintf("%s -> %s.op%d", src, dst, s.Op)
	}
	return fmt.Sprintf("%s -> %s", src, dst)
}

func (f *Format) endpointString(ref SocketRef, reg int, imm uint64) string {
	c := &f.Arch.Components[ref.Comp]
	switch c.Kind {
	case tta.IMM:
		return fmt.Sprintf("#%d", imm)
	case tta.RF:
		return fmt.Sprintf("%s.r%d", c.Name, reg)
	default:
		return fmt.Sprintf("%s.%s", c.Name, c.Ports[ref.Port].Role)
	}
}

// bitWriter packs little-endian bit fields into 64-bit limbs.
type bitWriter struct {
	limbs []uint64
	pos   int
}

func newBitWriter(nLimbs int) *bitWriter {
	return &bitWriter{limbs: make([]uint64, nLimbs)}
}

func (w *bitWriter) put(v uint64, bits int) {
	for i := 0; i < bits; i++ {
		if v>>uint(i)&1 == 1 {
			w.limbs[w.pos/64] |= 1 << uint(w.pos%64)
		}
		w.pos++
	}
}

type bitReader struct {
	limbs []uint64
	pos   int
}

func (r *bitReader) get(bits int) uint64 {
	var v uint64
	for i := 0; i < bits; i++ {
		if r.pos/64 < len(r.limbs) && r.limbs[r.pos/64]>>uint(r.pos%64)&1 == 1 {
			v |= 1 << uint(i)
		}
		r.pos++
	}
	return v
}
