package isa

import "fmt"

// Dictionary compression of instruction streams. TTA move words are wide
// and highly repetitive (the same transport patterns recur every loop
// iteration), so the classic remedy is a dictionary of unique words plus a
// narrow index stream — instruction memory holds indices, a small
// decompressor ROM holds the words. Compress/Decompress implement exactly
// that and the ratio feeds the exploration's code-size considerations.

// Compressed is a dictionary-compressed instruction stream.
type Compressed struct {
	// Dict holds the unique instruction words in first-appearance order.
	Dict [][]uint64
	// Indices is the program as dictionary references.
	Indices []int
	// IndexBits is the width of one index.
	IndexBits int
	// WordBits is the width of one dictionary word.
	WordBits int
}

// Compress builds the dictionary form of the program.
func (p *Program) Compress() *Compressed {
	c := &Compressed{WordBits: p.Format.InstrBits()}
	seen := map[string]int{}
	for _, w := range p.Words {
		key := wordKey(w)
		idx, ok := seen[key]
		if !ok {
			idx = len(c.Dict)
			seen[key] = idx
			c.Dict = append(c.Dict, w)
		}
		c.Indices = append(c.Indices, idx)
	}
	c.IndexBits = 1
	for 1<<uint(c.IndexBits) < len(c.Dict) {
		c.IndexBits++
	}
	return c
}

func wordKey(w []uint64) string {
	b := make([]byte, 0, len(w)*8)
	for _, limb := range w {
		for i := 0; i < 8; i++ {
			b = append(b, byte(limb>>uint(8*i)))
		}
	}
	return string(b)
}

// TotalBits returns the compressed footprint: the index stream plus the
// dictionary ROM.
func (c *Compressed) TotalBits() int {
	return len(c.Indices)*c.IndexBits + len(c.Dict)*c.WordBits
}

// Ratio returns compressed/original size (< 1 when compression helps).
func (c *Compressed) Ratio(original *Program) float64 {
	orig := original.CodeBits()
	if orig == 0 {
		return 1
	}
	return float64(c.TotalBits()) / float64(orig)
}

// Decompress reconstructs the raw word stream.
func (c *Compressed) Decompress() ([][]uint64, error) {
	out := make([][]uint64, len(c.Indices))
	for i, idx := range c.Indices {
		if idx < 0 || idx >= len(c.Dict) {
			return nil, fmt.Errorf("isa: index %d outside dictionary of %d", idx, len(c.Dict))
		}
		out[i] = c.Dict[idx]
	}
	return out, nil
}
