package isa

import (
	"strings"
	"testing"

	"repro/internal/crypt"
	"repro/internal/program"
	"repro/internal/sched"
	"repro/internal/tta"
)

func scheduleKernel(t *testing.T, arch *tta.Architecture) *sched.Result {
	t.Helper()
	kernel, err := crypt.BuildRoundKernel(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.Schedule(kernel, arch, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFormatDerivation(t *testing.T) {
	arch := tta.Figure9()
	f, err := NewFormat(arch)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 9: 16 sockets total; sources = R ports + RF reads + PC out +
	// IMM out = 3 FUs R... count: ALU R, CMP R, RF1 read, RF2 read, LDST R,
	// PC out, IMM out = 7 sources; destinations = 9.
	if len(f.srcs) != 7 {
		t.Errorf("%d source sockets, want 7", len(f.srcs))
	}
	if len(f.dsts) != 9 {
		t.Errorf("%d destination sockets, want 9", len(f.dsts))
	}
	if f.SrcBits < 3 || f.DstBits < 4 {
		t.Errorf("socket fields too narrow: src=%d dst=%d", f.SrcBits, f.DstBits)
	}
	if f.RegBits < 4 { // RF2 has 12 registers
		t.Errorf("reg field %d bits cannot address 12 registers", f.RegBits)
	}
	if f.InstrBits() <= f.Arch.Buses*f.SlotBits() {
		t.Error("instruction width lacks the immediate field")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	arch := tta.Figure9()
	res := scheduleKernel(t, arch)
	p, err := Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Words) != len(p.Instrs) {
		t.Fatal("words/instrs length mismatch")
	}
	for i, word := range p.Words {
		dec, err := p.Format.Decode(word, p.Instrs[i].Cycle)
		if err != nil {
			t.Fatalf("instruction %d: %v", i, err)
		}
		want := p.Instrs[i]
		if len(dec.Slots) != len(want.Slots) {
			t.Fatalf("instruction %d: slot count changed", i)
		}
		for si := range want.Slots {
			if dec.Slots[si] != want.Slots[si] {
				t.Fatalf("instruction %d slot %d: %+v != %+v", i, si, dec.Slots[si], want.Slots[si])
			}
		}
		if dec.Imm != want.Imm {
			t.Fatalf("instruction %d: imm %d != %d", i, dec.Imm, want.Imm)
		}
	}
}

func TestEncodedMoveCountMatchesSchedule(t *testing.T) {
	arch := tta.Figure9()
	res := scheduleKernel(t, arch)
	p, err := Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, ins := range p.Instrs {
		for _, s := range ins.Slots {
			if s.Valid {
				n++
			}
		}
	}
	if n != len(res.Moves) {
		t.Fatalf("encoded %d moves, schedule has %d", n, len(res.Moves))
	}
	if len(p.Instrs) != res.Cycles {
		t.Logf("note: %d instructions vs %d schedule cycles (trailing register-load cycle)", len(p.Instrs), res.Cycles)
	}
}

func TestCodeSizeGrowsWithBuses(t *testing.T) {
	// Wider instruction words are the classic TTA cost of more buses.
	narrow := tta.Figure9()
	narrow.Buses = 1
	tta.AssignPorts(narrow, tta.SpreadFirst)
	wide := tta.Figure9()
	wide.Buses = 4
	tta.AssignPorts(wide, tta.SpreadFirst)
	fN, err := NewFormat(narrow)
	if err != nil {
		t.Fatal(err)
	}
	fW, err := NewFormat(wide)
	if err != nil {
		t.Fatal(err)
	}
	if fW.InstrBits() <= fN.InstrBits() {
		t.Fatalf("4-bus instruction %d bits not wider than 1-bus %d", fW.InstrBits(), fN.InstrBits())
	}
}

func TestDisassemblyReadable(t *testing.T) {
	arch := tta.Figure9()
	res := scheduleKernel(t, arch)
	p, err := Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	asm := p.Disassemble()
	if len(asm) != len(p.Instrs) {
		t.Fatal("disassembly line count mismatch")
	}
	text := strings.Join(asm, "\n")
	for _, want := range []string{"ALU.T.op", "->", "#", "RF1.r", "nop"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly lacks %q", want)
		}
	}
}

func TestSpillMovesEncodable(t *testing.T) {
	// Force spilling with tiny register files and confirm the spill
	// traffic encodes (LD/ST opcodes with the store flag).
	arch := &tta.Architecture{
		Name: "tiny", Width: 16, Buses: 2,
		Components: []tta.Component{
			tta.NewFU(tta.ALU, "ALU"),
			tta.NewFU(tta.CMP, "CMP"),
			tta.NewRF("RF", 6, 1, 2),
			tta.NewFU(tta.LDST, "LD/ST"),
			tta.NewIMM("IMM"),
		},
	}
	tta.AssignPorts(arch, tta.SpreadFirst)
	g := program.NewGraph("pressure", 16)
	a := g.In()
	b := g.In()
	// Many ALU results whose consumers are all blocked behind a long
	// serial load chain: the scheduler races ahead on the ALU, the live
	// results overflow the 6-register file, and spill code is emitted.
	var adds []program.ValueID
	for i := 0; i < 14; i++ {
		adds = append(adds, g.Add(a, g.Xor(b, g.ConstV(uint64(i)))))
	}
	addr := g.ConstV(0)
	for i := 0; i < 24; i++ {
		addr = g.Load(addr) // strictly serial pointer chase
	}
	acc := addr
	for _, v := range adds {
		acc = g.Xor(acc, v)
	}
	g.Output(acc)
	res, err := sched.Schedule(g, arch, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Spills == 0 {
		t.Fatal("pressure graph scheduled without spills on a 6-register file")
	}
	p, err := Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	if p.CodeBits() == 0 {
		t.Fatal("empty encoding")
	}
	text := strings.Join(p.Disassemble(), "\n")
	if !strings.Contains(text, "LD/ST.T.op9") {
		t.Errorf("spill store (op9 = LD/ST store) not found in disassembly")
	}
}

func TestEncodeRejectsForeignSockets(t *testing.T) {
	arch := tta.Figure9()
	res := scheduleKernel(t, arch)
	// Corrupt one move to point at a non-source socket (an input port).
	bad := *res
	bad.Moves = append([]sched.Move(nil), res.Moves...)
	bad.Moves[0].Src = sched.Endpoint{Comp: 0, Port: 0, Reg: -1} // ALU operand port as a source
	if _, err := Encode(&bad); err == nil {
		t.Fatal("non-source socket accepted")
	}
}

func TestCompressRoundTrip(t *testing.T) {
	arch := tta.Figure9()
	res := scheduleKernel(t, arch)
	p, err := Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	c := p.Compress()
	if len(c.Dict) == 0 || len(c.Indices) != len(p.Words) {
		t.Fatalf("degenerate compression: dict=%d indices=%d", len(c.Dict), len(c.Indices))
	}
	back, err := c.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Words {
		if len(back[i]) != len(p.Words[i]) {
			t.Fatalf("word %d limb count changed", i)
		}
		for j := range p.Words[i] {
			if back[i][j] != p.Words[i][j] {
				t.Fatalf("word %d limb %d: %#x != %#x", i, j, back[i][j], p.Words[i][j])
			}
		}
	}
	ratio := c.Ratio(p)
	t.Logf("crypt round: %d words, %d unique, index %d bits, ratio %.2f",
		len(p.Words), len(c.Dict), c.IndexBits, ratio)
	if ratio >= 1.0 {
		t.Logf("note: dictionary compression did not help this program")
	}
}

func TestCompressRepetitiveProgramShrinks(t *testing.T) {
	// A loop-like stream (repeated identical words) must compress well.
	arch := tta.Figure9()
	res := scheduleKernel(t, arch)
	p, err := Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate 25 iterations of the same kernel: repeat the word stream.
	rep := &Program{Format: p.Format}
	for it := 0; it < 25; it++ {
		rep.Words = append(rep.Words, p.Words...)
		rep.Instrs = append(rep.Instrs, p.Instrs...)
	}
	c := rep.Compress()
	if got := c.Ratio(rep); got > 0.35 {
		t.Errorf("25x-repeated stream compressed only to %.2f", got)
	}
	if len(c.Dict) != len(p.Compress().Dict) {
		t.Error("repetition grew the dictionary")
	}
	if _, err := (&Compressed{Indices: []int{5}, Dict: nil}).Decompress(); err == nil {
		t.Error("out-of-range index accepted")
	}
}
