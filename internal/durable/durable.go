// Package durable is the engine's crash-safe persistence layer: every
// artifact that crosses a process boundary (dse checkpoints, the
// testcost warm-annotation cache, shard interchange files) is written
// through it and read back through it.
//
// Two primitives:
//
//   - Record framing. An artifact is a sequence of newline-delimited
//     records, each a single-line payload followed by a CRC32C
//     (Castagnoli) trailer over the payload bytes. A reader walks the
//     records in order and stops at the first damage — a missing
//     newline, a malformed trailer, a checksum mismatch — so a torn or
//     bit-flipped file yields its longest valid record prefix instead
//     of nothing. ScanRecords reports exactly how the walk ended;
//     callers decide whether a prefix is usable (a checkpoint resumes
//     from it) or fatal (a merge demands completeness).
//
//   - Atomic, synced file replacement. WriteFileAtomic writes to a
//     unique temp file in the destination directory, fsyncs the file,
//     renames it over the destination and fsyncs the parent directory —
//     the write either fully happens or leaves the old file untouched,
//     even across power loss. The fault-injection hook lets chaos tests
//     land a deliberately torn prefix at the final path (ModeTornWrite),
//     which is the disk state the record framing exists to survive.
//
// Files that cannot yield even a valid prefix are quarantined: renamed
// to <path>.corrupt and reported as a *CorruptArtifactError, a typed
// error that carries the artifact kind, the quarantine destination and
// the underlying cause — so operators see corruption in metrics and on
// disk, never as a silently overwritten file or a lost stderr line.
package durable

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/faultinject"
)

// castagnoli is the CRC32C polynomial table; CRC32C is hardware-
// accelerated on amd64/arm64, so the per-record cost on the checkpoint
// hot path is a table-free instruction stream.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// trailerMark separates a record's payload from its checksum trailer.
// The payload must not contain a newline; the trailer is always exactly
// len(trailerMark)+8 bytes ("…payload #c=1a2b3c4d\n").
const trailerMark = " #c="

// trailerLen is the byte length of a record trailer without the newline.
const trailerLen = len(trailerMark) + 8

// Checksum returns the CRC32C of payload — exported so tests and tools
// can frame records by hand.
func Checksum(payload []byte) uint32 {
	return crc32.Checksum(payload, castagnoli)
}

// AppendRecord appends one framed record (payload, trailer, newline) to
// dst and returns the extended slice. The payload must be a single line;
// embedded newlines would desynchronize the reader and are rejected by
// ScanRecords on the way back in.
func AppendRecord(dst, payload []byte) []byte {
	dst = append(dst, payload...)
	dst = append(dst, trailerMark...)
	dst = append(dst, fmt.Sprintf("%08x", Checksum(payload))...)
	return append(dst, '\n')
}

// TornRecordError reports where and why a record walk stopped before the
// end of the data. Reason is one of "no newline" (torn tail), "no
// trailer" (framing damage) or "crc mismatch" (bit rot); Offset is the
// byte position of the first damaged record.
type TornRecordError struct {
	Reason string
	Offset int
}

func (e *TornRecordError) Error() string {
	return fmt.Sprintf("durable: damaged record at byte %d (%s)", e.Offset, e.Reason)
}

// ScanRecords walks data record by record and returns every payload up
// to the first damage. A nil torn return means the data was fully valid;
// otherwise torn describes the first damaged record and dropped is how
// many bytes after the valid prefix were discarded. The payload slices
// alias data.
func ScanRecords(data []byte) (payloads [][]byte, dropped int, torn *TornRecordError) {
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			return payloads, len(data) - off, &TornRecordError{Reason: "no newline", Offset: off}
		}
		line := data[off : off+nl]
		if len(line) < trailerLen {
			return payloads, len(data) - off, &TornRecordError{Reason: "no trailer", Offset: off}
		}
		payload, trailer := line[:len(line)-trailerLen], line[len(line)-trailerLen:]
		if string(trailer[:len(trailerMark)]) != trailerMark {
			return payloads, len(data) - off, &TornRecordError{Reason: "no trailer", Offset: off}
		}
		var want uint32
		if _, err := fmt.Sscanf(string(trailer[len(trailerMark):]), "%08x", &want); err != nil {
			return payloads, len(data) - off, &TornRecordError{Reason: "no trailer", Offset: off}
		}
		if Checksum(payload) != want {
			return payloads, len(data) - off, &TornRecordError{Reason: "crc mismatch", Offset: off}
		}
		payloads = append(payloads, payload)
		off += nl + 1
	}
	return payloads, 0, nil
}

// IsFramed reports whether data starts with a record trailer on its
// first line — the cheap format probe that distinguishes CRC-framed
// artifacts from legacy whole-document JSON. Damage to the first line
// makes this return false; the caller's legacy parse then fails and the
// file is quarantined, which is the right answer for a file whose very
// first record is unreadable.
func IsFramed(data []byte) bool {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		nl = len(data)
	}
	line := data[:nl]
	if len(line) < trailerLen {
		return false
	}
	return bytes.Equal(line[len(line)-trailerLen:len(line)-8], []byte(trailerMark))
}

// WriteFileAtomic replaces path with data, surviving a crash at any
// instant: the bytes are written to a unique temp file in path's
// directory, fsynced, renamed over path, and the directory entry is
// fsynced too. On any failure the previous file (if any) is intact and
// the temp file is removed.
//
// inj/point are the fault-injection hook: a firing ModeTornWrite plan
// makes this call write only the plan's prefix fraction of data straight
// to path — non-atomically, simulating the torn on-disk state a real
// tear leaves — and return the *TornWriteError. Other injected errors
// fail the write without touching path. A nil injector costs one
// pointer test.
func WriteFileAtomic(path string, data []byte, inj *faultinject.Injector, point faultinject.Point) error {
	return writeFileAtomic(path, data, inj, point, true)
}

// WriteFileAtomicNoDirSync is WriteFileAtomic minus the final parent-
// directory fsync — for high-frequency rewrites of one path (periodic
// checkpoint flushes), where the directory fsync dominates the write
// cost and losing a rename's directory entry to a power cut merely
// resurfaces the previous intact version of the file. The payload fsync
// before the rename stays: a rename must never land ahead of the data
// it names. Writers of record (a worker's final flush, a daemon drain)
// should use the full WriteFileAtomic.
func WriteFileAtomicNoDirSync(path string, data []byte, inj *faultinject.Injector, point faultinject.Point) error {
	return writeFileAtomic(path, data, inj, point, false)
}

func writeFileAtomic(path string, data []byte, inj *faultinject.Injector, point faultinject.Point, dirSync bool) error {
	if err := inj.Hit(point); err != nil {
		var torn *faultinject.TornWriteError
		if errors.As(err, &torn) {
			n := int(float64(len(data)) * torn.Frac)
			// Deliberately non-atomic: the tear must land at the final
			// path for the recovery path to have something to recover.
			_ = os.WriteFile(path, data[:n], 0o644)
		}
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	if dirSync {
		syncDir(dir)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives power
// loss. Best-effort: some filesystems (and most non-Linux platforms)
// reject directory fsync, and the rename itself already happened — the
// durability loss is bounded to the metadata, so errors are ignored.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Recovery describes how DecodeDocument read a file: which format it was
// in and whether (and why) only a record prefix survived.
type Recovery struct {
	Legacy  bool   // whole-document pre-CRC format
	Torn    bool   // framed, but only a record prefix was valid
	CRCFail bool   // the damage was a checksum mismatch (bit rot)
	Cause   string // human-readable damage description, "" when clean
}

// DecodeDocument parses data in either the framed or the legacy
// whole-document format, via caller-supplied parsers: legacy takes the
// entire pre-framing document, header the first framed record, record
// each subsequent one. Framed damage — a torn tail, a checksum failure,
// or a checksum-valid record the record parser rejects — stops the walk
// and is reported in the Recovery; the parsed prefix stands. The error
// return is reserved for files that yield nothing usable: an unparseable
// legacy document, no intact first record, or a header record the header
// parser rejects.
func DecodeDocument(data []byte, legacy, header, record func([]byte) error) (Recovery, error) {
	var rec Recovery
	if !IsFramed(data) {
		rec.Legacy = true
		return rec, legacy(data)
	}
	payloads, _, torn := ScanRecords(data)
	if torn != nil {
		rec.Torn = true
		rec.CRCFail = torn.Reason == "crc mismatch"
		rec.Cause = torn.Error()
	}
	if len(payloads) == 0 {
		return rec, fmt.Errorf("no intact record (%s)", rec.Cause)
	}
	if err := header(payloads[0]); err != nil {
		// A checksum-valid but unparseable header is a writer bug, not
		// tearing — nothing to resume from.
		return rec, fmt.Errorf("header record: %w", err)
	}
	for _, p := range payloads[1:] {
		if err := record(p); err != nil {
			rec.Torn = true
			rec.Cause = fmt.Sprintf("unparseable entry record: %v", err)
			break
		}
	}
	return rec, nil
}

// CorruptArtifactError reports a persisted artifact that could not yield
// even a valid record prefix and was quarantined (renamed to
// QuarantinedTo) so the evidence survives while the writer starts fresh.
// It wraps the artifact-specific typed error (e.g.
// *dse.CheckpointCorruptError), so existing errors.As call sites keep
// matching.
type CorruptArtifactError struct {
	Artifact      string // "checkpoint", "annotation cache", ...
	Path          string
	QuarantinedTo string // empty if the quarantine rename itself failed
	Err           error
}

func (e *CorruptArtifactError) Error() string {
	if e.QuarantinedTo != "" {
		return fmt.Sprintf("durable: corrupt %s %s quarantined to %s: %v", e.Artifact, e.Path, e.QuarantinedTo, e.Err)
	}
	return fmt.Sprintf("durable: corrupt %s %s (quarantine failed): %v", e.Artifact, e.Path, e.Err)
}

func (e *CorruptArtifactError) Unwrap() error { return e.Err }

// Quarantine renames path to path+".corrupt" (replacing any previous
// quarantine of the same file) and returns the destination. A failed
// rename returns an empty destination; the caller's CorruptArtifactError
// then records that the evidence could not be preserved.
func Quarantine(path string) string {
	dst := path + ".corrupt"
	if err := os.Rename(path, dst); err != nil {
		return ""
	}
	return dst
}
