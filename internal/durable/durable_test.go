package durable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
)

func frame(lines ...string) []byte {
	var buf []byte
	for _, l := range lines {
		buf = AppendRecord(buf, []byte(l))
	}
	return buf
}

func TestRoundTrip(t *testing.T) {
	in := []string{`{"a":1}`, `{"b":2}`, "", `plain text record`}
	data := frame(in...)
	payloads, dropped, torn := ScanRecords(data)
	if torn != nil {
		t.Fatalf("torn = %v, want nil", torn)
	}
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	if len(payloads) != len(in) {
		t.Fatalf("got %d payloads, want %d", len(payloads), len(in))
	}
	for i, p := range payloads {
		if string(p) != in[i] {
			t.Errorf("payload %d = %q, want %q", i, p, in[i])
		}
	}
}

func TestScanEmpty(t *testing.T) {
	payloads, dropped, torn := ScanRecords(nil)
	if torn != nil || dropped != 0 || len(payloads) != 0 {
		t.Fatalf("ScanRecords(nil) = %v, %d, %v", payloads, dropped, torn)
	}
}

// TestTruncationSweep truncates a framed file at every byte offset and
// checks the scan always yields a valid record prefix — never an error
// mid-prefix, never a record that wasn't written.
func TestTruncationSweep(t *testing.T) {
	in := []string{`{"k":"v1"}`, `{"k":"v2"}`, `{"k":"v3"}`}
	data := frame(in...)
	for cut := 0; cut <= len(data); cut++ {
		payloads, dropped, torn := ScanRecords(data[:cut])
		if len(payloads) > len(in) {
			t.Fatalf("cut %d: %d payloads from %d records", cut, len(payloads), len(in))
		}
		for i, p := range payloads {
			if string(p) != in[i] {
				t.Fatalf("cut %d: payload %d = %q, want %q", cut, i, p, in[i])
			}
		}
		if cut == len(data) {
			if torn != nil {
				t.Fatalf("full data: torn = %v", torn)
			}
		} else if len(payloads)+((dropped+1)/1) == 0 && cut > 0 {
			t.Fatalf("cut %d: lost bytes without accounting", cut)
		}
		if torn == nil && cut < len(data) {
			// a clean scan of a truncation is only possible on a record
			// boundary
			if dropped != 0 {
				t.Fatalf("cut %d: clean scan but dropped=%d", cut, dropped)
			}
			if sum := len(frame(in[:len(payloads)]...)); sum != cut {
				t.Fatalf("cut %d: clean scan not on record boundary (prefix re-frames to %d bytes)", cut, sum)
			}
		}
	}
}

func TestScanBitFlip(t *testing.T) {
	in := []string{`{"k":"v1"}`, `{"k":"v2"}`, `{"k":"v3"}`}
	data := frame(in...)
	rec := len(frame(in[0]))
	// flip a payload byte inside record 2
	mut := append([]byte(nil), data...)
	mut[rec+3] ^= 0x40
	payloads, _, torn := ScanRecords(mut)
	if torn == nil || torn.Reason != "crc mismatch" {
		t.Fatalf("torn = %v, want crc mismatch", torn)
	}
	if len(payloads) != 1 || string(payloads[0]) != in[0] {
		t.Fatalf("payloads = %q, want just record 1", payloads)
	}
	if torn.Offset != rec {
		t.Fatalf("offset = %d, want %d", torn.Offset, rec)
	}
}

func TestScanGarbage(t *testing.T) {
	for _, garbage := range [][]byte{
		[]byte("not a framed file\n"),
		[]byte("{\n  \"version\": 1\n}\n"),
		[]byte("short\n"),
		bytes.Repeat([]byte{0xff}, 64),
	} {
		payloads, _, torn := ScanRecords(garbage)
		if torn == nil {
			t.Fatalf("ScanRecords(%q): no torn error", garbage)
		}
		if len(payloads) != 0 {
			t.Fatalf("ScanRecords(%q): recovered %d records from garbage", garbage, len(payloads))
		}
	}
}

func TestIsFramed(t *testing.T) {
	if !IsFramed(frame(`{"a":1}`)) {
		t.Error("framed data not detected")
	}
	if !IsFramed(frame(`{"a":1}`, `{"b":2}`)) {
		t.Error("multi-record framed data not detected")
	}
	// torn tail on the first record still probes as framed as long as
	// the trailer mark survives? No: probe requires full first line
	// trailer syntax; a tear inside it reads as legacy, and the legacy
	// parse then fails -> quarantine. Both torn variants must not panic.
	for _, legacy := range [][]byte{
		nil,
		[]byte("{}"),
		[]byte("{\n  \"version\": 1\n}\n"),
		[]byte("x"),
	} {
		if IsFramed(legacy) {
			t.Errorf("IsFramed(%q) = true", legacy)
		}
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact")
	if err := WriteFileAtomic(path, []byte("v1"), nil, faultinject.Checkpoint); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("read %q", got)
	}
	if err := WriteFileAtomic(path, []byte("v2 longer"), nil, faultinject.Checkpoint); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v2 longer" {
		t.Fatalf("read %q", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("leftover temp files: %v", ents)
	}
}

func TestWriteFileAtomicTornInjection(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact")
	data := frame(`{"a":1}`, `{"b":2}`, `{"c":3}`)

	inj := faultinject.New(1)
	inj.Arm(faultinject.Checkpoint, faultinject.Plan{Mode: faultinject.ModeTornWrite, Frac: 0.5, Limit: 1})

	err := WriteFileAtomic(path, data, inj, faultinject.Checkpoint)
	var torn *faultinject.TornWriteError
	if !errors.As(err, &torn) {
		t.Fatalf("err = %v, want TornWriteError", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatalf("torn write left no file: %v", rerr)
	}
	if len(got) != len(data)/2 {
		t.Fatalf("torn file has %d bytes, want %d", len(got), len(data)/2)
	}
	// The torn prefix must still yield a valid record prefix.
	payloads, _, scanTorn := ScanRecords(got)
	if scanTorn == nil && len(payloads) == 3 {
		t.Fatal("tear did not actually tear")
	}
	for i, p := range payloads {
		want := []string{`{"a":1}`, `{"b":2}`, `{"c":3}`}[i]
		if string(p) != want {
			t.Fatalf("recovered payload %d = %q, want %q", i, p, want)
		}
	}

	// Plan exhausted (Limit 1): the next write succeeds and repairs the file.
	if err := WriteFileAtomic(path, data, inj, faultinject.Checkpoint); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if !bytes.Equal(got, data) {
		t.Fatal("repair write did not replace torn file")
	}
}

func TestWriteFileAtomicErrorInjectionKeepsOld(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact")
	if err := WriteFileAtomic(path, []byte("old"), nil, faultinject.Checkpoint); err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(1)
	inj.Arm(faultinject.Checkpoint, faultinject.Plan{Mode: faultinject.ModeError, Limit: 1})
	if err := WriteFileAtomic(path, []byte("new"), inj, faultinject.Checkpoint); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "old" {
		t.Fatalf("old file clobbered: %q", got)
	}
}

func TestQuarantine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact")
	if err := os.WriteFile(path, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	dst := Quarantine(path)
	if dst != path+".corrupt" {
		t.Fatalf("dst = %q", dst)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("original still present")
	}
	if got, _ := os.ReadFile(dst); string(got) != "junk" {
		t.Fatalf("quarantined content %q", got)
	}
	if dst := Quarantine(filepath.Join(dir, "missing")); dst != "" {
		t.Fatalf("quarantine of missing file returned %q", dst)
	}
}

func TestCorruptArtifactError(t *testing.T) {
	inner := fmt.Errorf("inner cause")
	e := &CorruptArtifactError{Artifact: "checkpoint", Path: "/x/ck", QuarantinedTo: "/x/ck.corrupt", Err: inner}
	if !errors.Is(e, inner) {
		t.Fatal("Unwrap chain broken")
	}
	var ca *CorruptArtifactError
	if !errors.As(fmt.Errorf("wrap: %w", e), &ca) {
		t.Fatal("errors.As failed")
	}
	if e.Error() == "" || (&CorruptArtifactError{Artifact: "cache", Path: "p", Err: inner}).Error() == "" {
		t.Fatal("empty error string")
	}
}
