package program

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuildAndEvaluateArith(t *testing.T) {
	g := NewGraph("arith", 16)
	a := g.In()
	b := g.In()
	sum := g.Add(a, b)
	diff := g.Sub(a, b)
	g.Output(sum)
	g.Output(diff)
	g.Output(g.Xor(sum, diff))
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	out, err := Evaluate(g, []uint64{0x1234, 0x0FF0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantSum := uint64(0x1234+0x0FF0) & 0xFFFF
	wantDiff := uint64(0x1234-0x0FF0) & 0xFFFF
	if out[0] != wantSum || out[1] != wantDiff || out[2] != wantSum^wantDiff {
		t.Fatalf("got %#x, want [%#x %#x %#x]", out, wantSum, wantDiff, wantSum^wantDiff)
	}
}

func TestEvaluateWrapsAtWidth(t *testing.T) {
	g := NewGraph("wrap", 8)
	a := g.In()
	one := g.ConstV(1)
	g.Output(g.Add(a, one))
	out, err := Evaluate(g, []uint64{0xFF}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 {
		t.Fatalf("0xFF+1 at width 8 = %#x, want 0", out[0])
	}
}

func TestMemoryOrderingStoreLoad(t *testing.T) {
	g := NewGraph("mem", 16)
	addr := g.ConstV(0x40)
	val := g.ConstV(0xABCD)
	g.Store(addr, val)
	ld := g.Load(addr)
	g.Output(ld)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The load's MemPred must be the store.
	if g.Ops[ld].MemPred == NoValue {
		t.Fatal("load not ordered after store")
	}
	out, err := Evaluate(g, nil, Memory{})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0xABCD {
		t.Fatalf("load after store = %#x, want 0xABCD", out[0])
	}
}

func TestLoadFromInitializedMemory(t *testing.T) {
	g := NewGraph("rom", 16)
	g.Output(g.Load(g.ConstV(7)))
	mem := Memory{7: 0x55AA}
	out, err := Evaluate(g, nil, mem)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0x55AA {
		t.Fatalf("rom load = %#x, want 0x55AA", out[0])
	}
}

func TestValidateCatchesBadGraphs(t *testing.T) {
	g := NewGraph("bad", 16)
	a := g.In()
	g.Ops = append(g.Ops, Operation{Op: Add, A: 5, B: a, MemPred: NoValue})
	if err := g.Validate(); err == nil {
		t.Error("forward reference accepted")
	}

	g2 := NewGraph("bad2", 16)
	x := g2.In()
	g2.Output(x)
	g2.Outputs = append(g2.Outputs, 99)
	if err := g2.Validate(); err == nil {
		t.Error("out-of-range output accepted")
	}

	g3 := NewGraph("bad3", 1)
	if err := g3.Validate(); err == nil {
		t.Error("width 1 accepted")
	}

	g4 := NewGraph("bad4", 16)
	a4 := g4.ConstV(1)
	st := g4.Store(a4, a4)
	g4.Ops = append(g4.Ops, Operation{Op: Add, A: st, B: a4, MemPred: NoValue})
	if err := g4.Validate(); err == nil {
		t.Error("reading a store result accepted")
	}
}

func TestEvalBinaryMatchesGo(t *testing.T) {
	f := func(a, b uint16) bool {
		checks := []struct {
			op   OpCode
			want uint64
		}{
			{Add, uint64(a + b)},
			{Sub, uint64(a - b)},
			{And, uint64(a & b)},
			{Or, uint64(a | b)},
			{Xor, uint64(a ^ b)},
			{Eq, b2u(a == b)},
			{Ne, b2u(a != b)},
			{Ltu, b2u(a < b)},
			{Lts, b2u(int16(a) < int16(b))},
			{Geu, b2u(a >= b)},
			{Ges, b2u(int16(a) >= int16(b))},
			{Gtu, b2u(a > b)},
			{Gts, b2u(int16(a) > int16(b))},
		}
		for _, c := range checks {
			got, err := EvalBinary(c.op, uint64(a), uint64(b), 16)
			if err != nil || got != c.want&0xFFFF {
				return false
			}
		}
		// Shifts against Go semantics with the IR's over-shift-to-zero rule.
		sh := uint64(b) & 63
		wantSll := uint64(0)
		wantSrl := uint64(0)
		if sh < 16 {
			wantSll = uint64(a<<sh) & 0xFFFF
			wantSrl = uint64(a >> sh)
		}
		gotSll, _ := EvalBinary(Sll, uint64(a), uint64(b), 16)
		gotSrl, _ := EvalBinary(Srl, uint64(a), uint64(b), 16)
		return gotSll == wantSll && gotSrl == wantSrl
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func TestEvalBinaryRejectsNonBinary(t *testing.T) {
	if _, err := EvalBinary(Load, 1, 2, 16); err == nil {
		t.Error("EvalBinary accepted Load")
	}
	if _, err := EvalBinary(Const, 1, 2, 16); err == nil {
		t.Error("EvalBinary accepted Const")
	}
}

func TestStatsAndDepth(t *testing.T) {
	g := NewGraph("stats", 16)
	a := g.In()
	b := g.In()
	c1 := g.ConstV(3)
	s := g.Add(a, b)     // depth 1
	p := g.And(s, c1)    // depth 2
	q := g.Ltu(p, a)     // depth 3
	g.Store(c1, q)       // depth 4
	g.Output(g.Load(c1)) // depth 5
	st := g.Stats()
	if st.ALU != 2 || st.CMP != 1 || st.Loads != 1 || st.Stores != 1 || st.Inputs != 2 || st.Consts != 1 {
		t.Fatalf("bad stats: %+v", st)
	}
	if st.Depth != 5 {
		t.Fatalf("depth %d, want 5", st.Depth)
	}
	if st.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestEvaluateInputCountMismatch(t *testing.T) {
	g := NewGraph("in", 16)
	g.Output(g.In())
	if _, err := Evaluate(g, nil, nil); err == nil {
		t.Error("missing inputs accepted")
	}
	if _, err := Evaluate(g, []uint64{1, 2}, nil); err == nil {
		t.Error("extra inputs accepted")
	}
}

func TestOpCodeStringsAndClasses(t *testing.T) {
	for op := Input; op < numOpCodes; op++ {
		if op.String() == "" {
			t.Fatalf("empty name for opcode %d", op)
		}
	}
	if Add.Class() != ClassALU || Gts.Class() != ClassCMP || Load.Class() != ClassMem ||
		Const.Class() != ClassConst || Input.Class() != ClassInput {
		t.Fatal("opcode class mapping broken")
	}
}
