package program

import "fmt"

// Memory is the word-addressed data memory a program executes against.
type Memory map[uint64]uint64

// Evaluate runs the graph with the given input values and memory, returning
// the output values. It is the golden reference the TTA simulator's results
// are compared with. All arithmetic wraps at the graph width.
func Evaluate(g *Graph, inputs []uint64, mem Memory) ([]uint64, error) {
	if len(inputs) != g.numInputs {
		return nil, fmt.Errorf("program %q: %d inputs supplied, want %d", g.Name, len(inputs), g.numInputs)
	}
	if mem == nil {
		mem = Memory{}
	}
	mask := uint64(1)<<uint(g.Width) - 1
	vals := make([]uint64, len(g.Ops))
	for i, op := range g.Ops {
		var v uint64
		switch op.Op {
		case Input:
			v = inputs[op.Imm] & mask
		case Const:
			v = op.Imm & mask
		case Load:
			v = mem[vals[op.A]] & mask
		case Store:
			mem[vals[op.A]] = vals[op.B] & mask
		default:
			bv, err := EvalBinary(op.Op, vals[op.A], vals[op.B], g.Width)
			if err != nil {
				return nil, fmt.Errorf("program %q: op %d: %v", g.Name, i, err)
			}
			v = bv
		}
		vals[i] = v & mask
	}
	out := make([]uint64, len(g.Outputs))
	for i, o := range g.Outputs {
		out[i] = vals[o]
	}
	return out, nil
}

// EvalBinary computes one two-operand ALU or CMP operation with wrap-around
// at the given width — the shared golden semantics used by the graph
// evaluator and the TTA simulator.
func EvalBinary(op OpCode, a, b uint64, width int) (uint64, error) {
	mask := uint64(1)<<uint(width) - 1
	a &= mask
	b &= mask
	var v uint64
	switch op {
	case Add:
		v = a + b
	case Sub:
		v = a - b
	case Sll:
		sh := b & 63
		if sh >= uint64(width) {
			v = 0
		} else {
			v = a << sh
		}
	case Srl:
		sh := b & 63
		if sh >= uint64(width) {
			v = 0
		} else {
			v = a >> sh
		}
	case And:
		v = a & b
	case Or:
		v = a | b
	case Xor:
		v = a ^ b
	case Eq, Ne, Ltu, Lts, Geu, Ges, Gtu, Gts:
		v = evalCmp(op, a, b, width)
	default:
		return 0, fmt.Errorf("EvalBinary: opcode %s is not a binary operation", op)
	}
	return v & mask, nil
}

func evalCmp(op OpCode, a, b uint64, width int) uint64 {
	sign := uint64(1) << uint(width-1)
	sa := int64(a)
	sb := int64(b)
	if a&sign != 0 {
		sa = int64(a) - int64(1)<<uint(width)
	}
	if b&sign != 0 {
		sb = int64(b) - int64(1)<<uint(width)
	}
	var p bool
	switch op {
	case Eq:
		p = a == b
	case Ne:
		p = a != b
	case Ltu:
		p = a < b
	case Lts:
		p = sa < sb
	case Geu:
		p = a >= b
	case Ges:
		p = sa >= sb
	case Gtu:
		p = a > b
	case Gts:
		p = sa > sb
	}
	if p {
		return 1
	}
	return 0
}
