// Package program provides the operation dataflow IR that applications are
// lowered to before move scheduling: a straight-line SSA-style graph of
// 16-bit (configurable width) operations with explicit inputs, constants,
// memory accesses and outputs. The MOVE framework's role of turning C/C++
// into TTA-schedulable operations is played by builders in this package and
// by the crypt kernel generator in internal/crypt.
package program

import (
	"fmt"
)

// OpCode enumerates the IR operations.
type OpCode uint8

// IR operations. The arithmetic/logic group maps onto the ALU, the
// comparison group onto the CMP unit, Load/Store onto the LD/ST unit and
// Const onto the immediate unit.
const (
	Input OpCode = iota // function argument (Imm holds the argument index)
	Const               // literal (Imm holds the value)

	Add
	Sub
	Sll
	Srl
	And
	Or
	Xor

	Eq
	Ne
	Ltu
	Lts
	Geu
	Ges
	Gtu
	Gts

	Load  // A = address
	Store // A = address, B = value; defines no value

	numOpCodes
)

var opNames = [numOpCodes]string{
	Input: "input", Const: "const",
	Add: "add", Sub: "sub", Sll: "sll", Srl: "srl",
	And: "and", Or: "or", Xor: "xor",
	Eq: "eq", Ne: "ne", Ltu: "ltu", Lts: "lts",
	Geu: "geu", Ges: "ges", Gtu: "gtu", Gts: "gts",
	Load: "load", Store: "store",
}

func (o OpCode) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Class groups opcodes by the component kind that executes them.
type Class uint8

// Operation classes.
const (
	ClassInput Class = iota
	ClassConst
	ClassALU
	ClassCMP
	ClassMem
)

// Class returns the execution class of the opcode.
func (o OpCode) Class() Class {
	switch {
	case o == Input:
		return ClassInput
	case o == Const:
		return ClassConst
	case o >= Add && o <= Xor:
		return ClassALU
	case o >= Eq && o <= Gts:
		return ClassCMP
	default:
		return ClassMem
	}
}

// NoValue marks an absent operand.
const NoValue ValueID = -1

// ValueID identifies the value defined by an operation (equal to the
// operation's index in the graph).
type ValueID int32

// Operation is one node of the dataflow graph.
type Operation struct {
	Op   OpCode
	A, B ValueID // operands; NoValue when unused
	Imm  uint64  // Const value or Input index
	// MemPred is the previous memory operation (NoValue if none); it
	// serializes loads and stores so the scheduler preserves memory order.
	MemPred ValueID
}

// Defines reports whether the operation produces a value.
func (op Operation) Defines() bool { return op.Op != Store }

// Graph is a straight-line dataflow program.
type Graph struct {
	Name    string
	Width   int
	Ops     []Operation
	Outputs []ValueID

	numInputs int
	lastMem   ValueID
}

// NewGraph returns an empty graph for a datapath of the given bit width.
func NewGraph(name string, width int) *Graph {
	return &Graph{Name: name, Width: width, lastMem: NoValue}
}

// NumInputs returns the number of declared inputs.
func (g *Graph) NumInputs() int { return g.numInputs }

// NumOps returns the operation count.
func (g *Graph) NumOps() int { return len(g.Ops) }

func (g *Graph) add(op Operation) ValueID {
	id := ValueID(len(g.Ops))
	g.Ops = append(g.Ops, op)
	return id
}

// In declares the next function input.
func (g *Graph) In() ValueID {
	id := g.add(Operation{Op: Input, A: NoValue, B: NoValue, Imm: uint64(g.numInputs), MemPred: NoValue})
	g.numInputs++
	return id
}

// ConstV adds a literal value.
func (g *Graph) ConstV(v uint64) ValueID {
	return g.add(Operation{Op: Const, A: NoValue, B: NoValue, Imm: v, MemPred: NoValue})
}

// Bin adds a two-operand ALU or CMP operation.
func (g *Graph) Bin(op OpCode, a, b ValueID) ValueID {
	return g.add(Operation{Op: op, A: a, B: b, MemPred: NoValue})
}

// Add returns a+b.
func (g *Graph) Add(a, b ValueID) ValueID { return g.Bin(Add, a, b) }

// Sub returns a-b.
func (g *Graph) Sub(a, b ValueID) ValueID { return g.Bin(Sub, a, b) }

// Sll returns a<<b.
func (g *Graph) Sll(a, b ValueID) ValueID { return g.Bin(Sll, a, b) }

// Srl returns a>>b.
func (g *Graph) Srl(a, b ValueID) ValueID { return g.Bin(Srl, a, b) }

// And returns a&b.
func (g *Graph) And(a, b ValueID) ValueID { return g.Bin(And, a, b) }

// Or returns a|b.
func (g *Graph) Or(a, b ValueID) ValueID { return g.Bin(Or, a, b) }

// Xor returns a^b.
func (g *Graph) Xor(a, b ValueID) ValueID { return g.Bin(Xor, a, b) }

// Eq returns a==b (0 or 1).
func (g *Graph) Eq(a, b ValueID) ValueID { return g.Bin(Eq, a, b) }

// Ne returns a!=b (0 or 1).
func (g *Graph) Ne(a, b ValueID) ValueID { return g.Bin(Ne, a, b) }

// Ltu returns a<b unsigned (0 or 1).
func (g *Graph) Ltu(a, b ValueID) ValueID { return g.Bin(Ltu, a, b) }

// Lts returns a<b signed (0 or 1).
func (g *Graph) Lts(a, b ValueID) ValueID { return g.Bin(Lts, a, b) }

// Load reads memory at the address value.
func (g *Graph) Load(addr ValueID) ValueID {
	id := g.add(Operation{Op: Load, A: addr, B: NoValue, MemPred: g.lastMem})
	g.lastMem = id
	return id
}

// Store writes value v to memory at the address value. It defines no
// result.
func (g *Graph) Store(addr, v ValueID) ValueID {
	id := g.add(Operation{Op: Store, A: addr, B: v, MemPred: g.lastMem})
	g.lastMem = id
	return id
}

// Output marks a value as a program result.
func (g *Graph) Output(v ValueID) {
	g.Outputs = append(g.Outputs, v)
}

// Validate checks SSA discipline: operands defined before use, opcode
// ranges, and output references.
func (g *Graph) Validate() error {
	if g.Width < 2 || g.Width > 64 {
		return fmt.Errorf("program %q: width %d out of range", g.Name, g.Width)
	}
	for i, op := range g.Ops {
		if op.Op >= numOpCodes {
			return fmt.Errorf("program %q: op %d has invalid opcode %d", g.Name, i, op.Op)
		}
		for _, ref := range []ValueID{op.A, op.B, op.MemPred} {
			if ref != NoValue && (ref < 0 || int(ref) >= i) {
				return fmt.Errorf("program %q: op %d uses undefined value %d", g.Name, i, ref)
			}
		}
		if op.A != NoValue && !g.Ops[op.A].Defines() {
			return fmt.Errorf("program %q: op %d reads store %d", g.Name, i, op.A)
		}
		if op.B != NoValue && !g.Ops[op.B].Defines() {
			return fmt.Errorf("program %q: op %d reads store %d", g.Name, i, op.B)
		}
		needsA := op.Op.Class() == ClassALU || op.Op.Class() == ClassCMP || op.Op == Load || op.Op == Store
		if needsA && op.A == NoValue {
			return fmt.Errorf("program %q: op %d (%s) lacks operand A", g.Name, i, op.Op)
		}
		needsB := op.Op.Class() == ClassALU || op.Op.Class() == ClassCMP || op.Op == Store
		if needsB && op.B == NoValue {
			return fmt.Errorf("program %q: op %d (%s) lacks operand B", g.Name, i, op.Op)
		}
	}
	for _, o := range g.Outputs {
		if o < 0 || int(o) >= len(g.Ops) || !g.Ops[o].Defines() {
			return fmt.Errorf("program %q: invalid output %d", g.Name, o)
		}
	}
	return nil
}

// Stats summarises the operation mix.
type Stats struct {
	Ops     int
	ALU     int
	CMP     int
	Loads   int
	Stores  int
	Consts  int
	Inputs  int
	Depth   int // critical path in operations
	Outputs int
}

// Stats computes the operation mix and dataflow depth.
func (g *Graph) Stats() Stats {
	s := Stats{Ops: len(g.Ops), Outputs: len(g.Outputs)}
	depth := make([]int, len(g.Ops))
	for i, op := range g.Ops {
		switch op.Op.Class() {
		case ClassALU:
			s.ALU++
		case ClassCMP:
			s.CMP++
		case ClassMem:
			if op.Op == Load {
				s.Loads++
			} else {
				s.Stores++
			}
		case ClassConst:
			s.Consts++
		case ClassInput:
			s.Inputs++
		}
		d := 0
		for _, ref := range []ValueID{op.A, op.B, op.MemPred} {
			if ref != NoValue && depth[ref]+1 > d {
				d = depth[ref] + 1
			}
		}
		depth[i] = d
		if d > s.Depth {
			s.Depth = d
		}
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("ops=%d (alu=%d cmp=%d ld=%d st=%d const=%d in=%d out=%d) depth=%d",
		s.Ops, s.ALU, s.CMP, s.Loads, s.Stores, s.Consts, s.Inputs, s.Outputs, s.Depth)
}
