// Package march implements the march memory-test algorithms used to derive
// the register-file pattern counts n_p of the paper's test cost function
// (12) — register files in a TTA are implemented as multi-ported memories
// and tested with marching patterns (van de Goor [14]), with port
// restrictions handled after Hamdioui & van de Goor [15].
//
// The package provides the classic algorithms (MATS+, March C-, March B)
// as executable element sequences, a word-oriented memory model with
// injectable functional faults, and the pattern/cycle counting used by the
// cost model.
package march

import "fmt"

// Op is one memory operation of a march element. Reads carry the expected
// value (the data background or its complement).
type Op uint8

// March operations: write/read the solid background (0) or its complement
// (1).
const (
	W0 Op = iota
	W1
	R0
	R1
)

func (o Op) String() string {
	return [...]string{"w0", "w1", "r0", "r1"}[o]
}

// AddrOrder is the addressing order of a march element.
type AddrOrder uint8

// Addressing orders: ascending, descending, or irrelevant.
const (
	Up AddrOrder = iota
	Down
	Any
)

func (a AddrOrder) String() string {
	return [...]string{"up", "down", "any"}[a]
}

// Element is one march element: an addressing order and the operations
// applied to every cell before moving to the next.
type Element struct {
	Order AddrOrder
	Ops   []Op
}

// Test is a complete march test.
type Test struct {
	Name     string
	Elements []Element
}

// MATSPlus is MATS+ (5N): {⇕(w0); ⇑(r0,w1); ⇓(r1,w0)}. Detects all
// address-decoder faults and stuck-at faults, but not all coupling faults.
var MATSPlus = Test{
	Name: "MATS+",
	Elements: []Element{
		{Any, []Op{W0}},
		{Up, []Op{R0, W1}},
		{Down, []Op{R1, W0}},
	},
}

// MarchCMinus is March C- (10N): detects SAFs, transition faults,
// address-decoder faults and unlinked idempotent/inversion coupling faults.
var MarchCMinus = Test{
	Name: "MarchC-",
	Elements: []Element{
		{Any, []Op{W0}},
		{Up, []Op{R0, W1}},
		{Up, []Op{R1, W0}},
		{Down, []Op{R0, W1}},
		{Down, []Op{R1, W0}},
		{Any, []Op{R0}},
	},
}

// MarchB is March B (17N): additionally detects linked faults.
var MarchB = Test{
	Name: "MarchB",
	Elements: []Element{
		{Any, []Op{W0}},
		{Up, []Op{R0, W1, R1, W0, R0, W1}},
		{Up, []Op{R1, W0, W1}},
		{Down, []Op{R1, W0, W1, W0}},
		{Down, []Op{R0, W1, W0}},
	},
}

// OpsPerCell returns the number of operations applied to each cell (the
// "xN" factor of the algorithm's usual name).
func (t Test) OpsPerCell() int {
	n := 0
	for _, e := range t.Elements {
		n += len(e.Ops)
	}
	return n
}

// PatternCount returns n_p for a memory of the given number of cells
// (words, for the word-oriented register-file usage): every operation is
// one applied pattern.
func (t Test) PatternCount(cells int) int {
	return t.OpsPerCell() * cells
}

func (t Test) String() string {
	return fmt.Sprintf("%s (%dN)", t.Name, t.OpsPerCell())
}

// Memory abstracts the word-oriented memory under test. Read returns the
// stored word; the march runner compares it with the expected background.
type Memory interface {
	Write(addr int, v uint64)
	Read(addr int) uint64
	Size() int
}

// Failure describes the first mismatch observed by a march run.
type Failure struct {
	Element int
	OpIndex int
	Addr    int
	Got     uint64
	Want    uint64
}

func (f *Failure) Error() string {
	return fmt.Sprintf("march: element %d op %d addr %d: read %#x, want %#x",
		f.Element, f.OpIndex, f.Addr, f.Got, f.Want)
}

// Run executes the march test over the memory using the solid data
// background bg (and its complement within width bits). It returns nil if
// the memory behaves correctly and a *Failure at the first detection.
func (t Test) Run(m Memory, width int, bg uint64) *Failure {
	mask := uint64(1)<<uint(width) - 1
	b0 := bg & mask
	b1 := ^bg & mask
	n := m.Size()
	for ei, e := range t.Elements {
		addrs := make([]int, n)
		for i := range addrs {
			if e.Order == Down {
				addrs[i] = n - 1 - i
			} else {
				addrs[i] = i
			}
		}
		for _, addr := range addrs {
			for oi, op := range e.Ops {
				switch op {
				case W0:
					m.Write(addr, b0)
				case W1:
					m.Write(addr, b1)
				case R0:
					if got := m.Read(addr); got != b0 {
						return &Failure{Element: ei, OpIndex: oi, Addr: addr, Got: got, Want: b0}
					}
				case R1:
					if got := m.Read(addr); got != b1 {
						return &Failure{Element: ei, OpIndex: oi, Addr: addr, Got: got, Want: b1}
					}
				}
			}
		}
	}
	return nil
}

// MultiPortPatternCount extends the single-port pattern count with the
// port-interaction tests required for multi-port memories (after [15]):
// every ordered pair of distinct ports must be exercised for inter-port
// shorts and concurrency faults, adding 2N operations per pair of ports
// drawn from the write and read port sets.
func MultiPortPatternCount(t Test, cells, nIn, nOut int) int {
	base := t.PatternCount(cells)
	ports := nIn + nOut
	if ports <= 2 {
		return base
	}
	pairs := ports * (ports - 1) / 2
	// A simple single-port memory already has one write + one read port;
	// only the additional pairs cost extra.
	pairs--
	if pairs < 0 {
		pairs = 0
	}
	return base + 2*cells*pairs
}

// StandardBackgrounds are the classic word-oriented data backgrounds: the
// solid background exercises inter-word faults; the checkerboard puts
// opposite values on adjacent bits within a word, sensitizing intra-word
// shorts that solid data can never expose.
var StandardBackgrounds = []uint64{0x0000, 0xAAAA}

// RunWithBackgrounds executes the march test once per data background and
// returns the first failure (tagging nothing extra; the failure's values
// identify the background). The pattern count scales linearly:
// PatternCount(cells) * len(backgrounds).
func (t Test) RunWithBackgrounds(m Memory, width int, backgrounds []uint64) *Failure {
	for _, bg := range backgrounds {
		if f := t.Run(m, width, bg); f != nil {
			return f
		}
	}
	return nil
}
