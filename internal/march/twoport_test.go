package march

import "testing"

func TestMarch2PFPassesOnGoodMemory(t *testing.T) {
	for _, bg := range []uint64{0x0000, 0x5A5A} {
		m := NewTwoPortRAM(16)
		if f := March2PF.Run(m, 16, bg); f != nil {
			t.Errorf("bg=%#x: failed on fault-free two-port memory: %v", bg, f)
		}
	}
}

func TestMarch2PFDetectsWeakRead(t *testing.T) {
	for _, addr := range []int{0, 5, 15} {
		m := &WeakReadFault{M: NewTwoPortRAM(16), Addr: addr, Bit: 2}
		if f := March2PF.Run(m, 16, 0); f == nil {
			t.Errorf("weak-read fault at word %d missed", addr)
		}
	}
}

func TestMarch2PFDetectsPortDisturb(t *testing.T) {
	// Victims addressed as "previous cell" of the down sweep: every cell
	// except the very last down-sweep position is read as a neighbour.
	for _, victim := range []int{0, 3, 14} {
		m := &PortDisturbFault{M: NewTwoPortRAM(16), Victim: victim, Bit: 7}
		if f := March2PF.Run(m, 16, 0); f == nil {
			t.Errorf("inter-port disturb on word %d missed", victim)
		}
	}
}

func TestSinglePortMarchesMissTwoPortFaults(t *testing.T) {
	// The core claim of reference [15]: port-restricted (single-port)
	// sequences cannot sensitize simultaneous-access faults — even the
	// strongest single-port march passes a memory with a weak-read cell.
	for _, alg := range []Test{MATSPlus, MarchCMinus, MarchB} {
		weak := &SinglePortView{M: &WeakReadFault{M: NewTwoPortRAM(16), Addr: 6, Bit: 1}}
		if f := alg.Run(weak, 16, 0); f != nil {
			t.Errorf("%s claims to detect a weak-read fault through one port: %v", alg.Name, f)
		}
		dist := &SinglePortView{M: &PortDisturbFault{M: NewTwoPortRAM(16), Victim: 6, Bit: 1}}
		if f := alg.Run(dist, 16, 0); f != nil {
			t.Errorf("%s claims to detect an inter-port disturb through one port: %v", alg.Name, f)
		}
	}
}

func TestMarch2PFStillCatchesClassicFaults(t *testing.T) {
	// The two-port test must not regress on ordinary stuck-at cells. Wrap
	// a SAF into the two-port interface.
	type safTwoPort struct {
		*TwoPortRAM
		addr int
		bit  uint
		val  uint64
	}
	force := func(s *safTwoPort, addr int, v uint64) uint64 {
		if addr == s.addr {
			v &^= 1 << s.bit
			v |= s.val << s.bit
		}
		return v
	}
	m := &safTwoPort{TwoPortRAM: NewTwoPortRAM(16), addr: 9, bit: 4, val: 1}
	wrapped := twoPortFunc{
		size: 16,
		access: func(aA int, oA Op, vA uint64, aB int, oB Op, vB uint64) (uint64, uint64) {
			ra, rb := m.Access(aA, oA, vA, aB, oB, vB)
			if oA == R0 || oA == R1 {
				ra = force(m, aA, ra)
			}
			if oB == R0 || oB == R1 {
				rb = force(m, aB, rb)
			}
			return ra, rb
		},
	}
	if f := March2PF.Run(wrapped, 16, 0); f == nil {
		t.Error("March2PF missed a plain stuck-at cell")
	}
}

// twoPortFunc adapts a closure to TwoPortMemory.
type twoPortFunc struct {
	size   int
	access func(int, Op, uint64, int, Op, uint64) (uint64, uint64)
}

func (t twoPortFunc) Size() int { return t.size }
func (t twoPortFunc) Access(aA int, oA Op, vA uint64, aB int, oB Op, vB uint64) (uint64, uint64) {
	return t.access(aA, oA, vA, aB, oB, vB)
}

func TestTwoPortCounts(t *testing.T) {
	if got := March2PF.OpsPerCell(); got != 8 {
		t.Errorf("March2PF is %d pairs/cell, want 8", got)
	}
	if got := March2PF.PatternCount(12); got != 96 {
		t.Errorf("pattern count %d, want 96", got)
	}
	if (TwoPortOp{A: R0, B: R0}).String() == "" || (TwoPortOp{A: W1, B: NoOp}).String() == "" {
		t.Error("empty op strings")
	}
	if (TwoPortOp{A: W1, B: R0, BPrev: true}).String() != "w1:r0@prev" {
		t.Errorf("unexpected op string %q", (TwoPortOp{A: W1, B: R0, BPrev: true}).String())
	}
}

func TestWriteWritePriorityDefined(t *testing.T) {
	// Same-address simultaneous writes: port A wins by definition.
	m := NewTwoPortRAM(4)
	m.Access(2, W1, 0xAAAA, 2, W1, 0x5555)
	if got := m.words[2]; got != 0xAAAA {
		t.Fatalf("write-write conflict resolved to %#x, want port A's 0xAAAA", got)
	}
}
