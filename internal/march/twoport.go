package march

// Two-port march tests, after Hamdioui & van de Goor's "Consequences of
// Port Restrictions on Testing Two-Port Memories" (the paper's reference
// [15]): multi-port register files exhibit fault classes that only
// simultaneous accesses through two ports can sensitize — weak reads
// (two concurrent reads of one cell flip its value out), and inter-port
// write disturbs. Single-port march algorithms, applied per port, cannot
// detect them; the two-port elements here can.

// NoOp marks an idle port within a two-port operation pair.
const NoOp Op = 0xFF

// TwoPortOp applies one operation per port in the same cycle. Addr
// selection: PortB addresses the same cell (Same) or the previous cell
// (Prev) relative to the marching address.
type TwoPortOp struct {
	A     Op
	B     Op
	BPrev bool // port B targets address-1 instead of the marching address
}

func (o TwoPortOp) String() string {
	fa, fb := "-", "-"
	if o.A != NoOp {
		fa = o.A.String()
	}
	if o.B != NoOp {
		fb = o.B.String()
		if o.BPrev {
			fb += "@prev"
		}
	}
	return fa + ":" + fb
}

// TwoPortElement is one marching element of paired operations.
type TwoPortElement struct {
	Order AddrOrder
	Ops   []TwoPortOp
}

// TwoPortTest is a complete two-port march test.
type TwoPortTest struct {
	Name     string
	Elements []TwoPortElement
}

// March2PF is a compact two-port test: an initialization sweep, a
// simultaneous double-read sweep in both data polarities (sensitizing
// weak-read faults), and a write-while-read-neighbour sweep (sensitizing
// inter-port disturbs).
var March2PF = TwoPortTest{
	Name: "March2PF",
	Elements: []TwoPortElement{
		{Any, []TwoPortOp{{A: W0, B: NoOp}}},
		{Up, []TwoPortOp{{A: R0, B: R0}, {A: W1, B: NoOp}}},
		{Up, []TwoPortOp{{A: R1, B: R1}, {A: W0, B: NoOp}}},
		{Down, []TwoPortOp{{A: W1, B: R0, BPrev: true}, {A: R1, B: NoOp}}},
		{Any, []TwoPortOp{{A: R1, B: R1}}},
	},
}

// OpsPerCell counts the operation pairs applied per cell.
func (t TwoPortTest) OpsPerCell() int {
	n := 0
	for _, e := range t.Elements {
		n += len(e.Ops)
	}
	return n
}

// PatternCount is the applied pattern count over a memory of `cells`
// words (each pair is one pattern: both ports fire in the same cycle).
func (t TwoPortTest) PatternCount(cells int) int { return t.OpsPerCell() * cells }

// TwoPortMemory is a memory accessed through two simultaneous ports.
// Access performs at most one operation per port in one cycle and returns
// the read values (valid when the respective op was a read).
type TwoPortMemory interface {
	Size() int
	Access(addrA int, opA Op, valA uint64, addrB int, opB Op, valB uint64) (readA, readB uint64)
}

// Run executes the two-port test with the solid background bg. It reports
// the first mismatch.
func (t TwoPortTest) Run(m TwoPortMemory, width int, bg uint64) *Failure {
	mask := uint64(1)<<uint(width) - 1
	b0 := bg & mask
	b1 := ^bg & mask
	val := func(op Op) uint64 {
		if op == W1 || op == R1 {
			return b1
		}
		return b0
	}
	n := m.Size()
	for ei, e := range t.Elements {
		for step := 0; step < n; step++ {
			addr := step
			if e.Order == Down {
				addr = n - 1 - step
			}
			for oi, pair := range e.Ops {
				addrB := addr
				opA, opB := pair.A, pair.B
				if pair.BPrev {
					if addr == 0 {
						opB = NoOp // no untouched predecessor cell
					} else {
						addrB = addr - 1
					}
				}
				ra, rb := m.Access(addr, opA, val(opA), addrB, opB, val(opB))
				if opA == R0 || opA == R1 {
					if want := val(opA); ra != want {
						return &Failure{Element: ei, OpIndex: oi, Addr: addr, Got: ra, Want: want}
					}
				}
				if opB == R0 || opB == R1 {
					// Element 4's port-B read targets the previous cell,
					// which the down sweep has already rewritten to 1.
					want := val(opB)
					if rb != want {
						return &Failure{Element: ei, OpIndex: oi, Addr: addrB, Got: rb, Want: want}
					}
				}
			}
		}
	}
	return nil
}

// --- Two-port memory models ---

// TwoPortRAM is a fault-free two-port memory (write port A wins on a
// same-address write-write conflict).
type TwoPortRAM struct {
	words []uint64
}

// NewTwoPortRAM returns a zero-initialized two-port memory.
func NewTwoPortRAM(n int) *TwoPortRAM { return &TwoPortRAM{words: make([]uint64, n)} }

// Size returns the word count.
func (r *TwoPortRAM) Size() int { return len(r.words) }

// Access performs the two port operations in one cycle.
func (r *TwoPortRAM) Access(addrA int, opA Op, valA uint64, addrB int, opB Op, valB uint64) (uint64, uint64) {
	var ra, rb uint64
	if opA == R0 || opA == R1 {
		ra = r.words[addrA]
	}
	if opB == R0 || opB == R1 {
		rb = r.words[addrB]
	}
	if opB == W0 || opB == W1 {
		r.words[addrB] = valB
	}
	if opA == W0 || opA == W1 {
		r.words[addrA] = valA
	}
	return ra, rb
}

// WeakReadFault models the classic two-port weak cell: when BOTH ports
// read the same cell simultaneously, the doubled bit-line load flips the
// sensed value of one bit. Single-port sequences never sensitize it.
type WeakReadFault struct {
	M    *TwoPortRAM
	Addr int
	Bit  uint
}

// Size returns the word count.
func (f *WeakReadFault) Size() int { return f.M.Size() }

// Access injects the weak-read behaviour on simultaneous same-cell reads.
func (f *WeakReadFault) Access(addrA int, opA Op, valA uint64, addrB int, opB Op, valB uint64) (uint64, uint64) {
	ra, rb := f.M.Access(addrA, opA, valA, addrB, opB, valB)
	bothRead := (opA == R0 || opA == R1) && (opB == R0 || opB == R1)
	if bothRead && addrA == addrB && addrA == f.Addr {
		ra ^= 1 << f.Bit
	}
	return ra, rb
}

// PortDisturbFault models an inter-port disturb: a write through port A
// while port B reads a *different* cell corrupts the read of the victim
// bit (shared-bitline coupling).
type PortDisturbFault struct {
	M      *TwoPortRAM
	Victim int
	Bit    uint
}

// Size returns the word count.
func (f *PortDisturbFault) Size() int { return f.M.Size() }

// Access injects the disturb on concurrent write(A)/read(B) cycles.
func (f *PortDisturbFault) Access(addrA int, opA Op, valA uint64, addrB int, opB Op, valB uint64) (uint64, uint64) {
	ra, rb := f.M.Access(addrA, opA, valA, addrB, opB, valB)
	writeA := opA == W0 || opA == W1
	readB := opB == R0 || opB == R1
	if writeA && readB && addrA != addrB && addrB == f.Victim {
		rb ^= 1 << f.Bit
	}
	return ra, rb
}

// SinglePortView adapts a two-port memory to the single-port Memory
// interface (port A only) — used to demonstrate that single-port marches
// cannot see two-port faults.
type SinglePortView struct {
	M TwoPortMemory
}

// Size returns the word count.
func (v *SinglePortView) Size() int { return v.M.Size() }

// Write stores through port A only.
func (v *SinglePortView) Write(addr int, val uint64) {
	v.M.Access(addr, W1, val, 0, NoOp, 0)
}

// Read loads through port A only.
func (v *SinglePortView) Read(addr int) uint64 {
	ra, _ := v.M.Access(addr, R0, 0, 0, NoOp, 0)
	return ra
}
