package march

// Faulty memory models: a good RAM wrapped with classic functional fault
// behaviours, used to validate which march algorithms detect which fault
// classes (van de Goor's fault taxonomy).

// RAM is a fault-free word-oriented memory.
type RAM struct {
	words []uint64
}

// NewRAM returns a zero-initialized memory of n words.
func NewRAM(n int) *RAM { return &RAM{words: make([]uint64, n)} }

// Write stores v at addr.
func (r *RAM) Write(addr int, v uint64) { r.words[addr] = v }

// Read returns the word at addr.
func (r *RAM) Read(addr int) uint64 { return r.words[addr] }

// Size returns the word count.
func (r *RAM) Size() int { return len(r.words) }

// SAF wraps a memory with a stuck-at fault: bit `bit` of word `addr` is
// stuck at `value`.
type SAF struct {
	M     Memory
	Addr  int
	Bit   uint
	Value uint64 // 0 or 1
}

func (f *SAF) force(v uint64) uint64 {
	v &^= 1 << f.Bit
	v |= f.Value << f.Bit
	return v
}

// Write stores v; the stuck bit ignores the written value.
func (f *SAF) Write(addr int, v uint64) {
	if addr == f.Addr {
		v = f.force(v)
	}
	f.M.Write(addr, v)
}

// Read returns the stored word with the stuck bit forced.
func (f *SAF) Read(addr int) uint64 {
	v := f.M.Read(addr)
	if addr == f.Addr {
		v = f.force(v)
	}
	return v
}

// Size returns the word count.
func (f *SAF) Size() int { return f.M.Size() }

// TF wraps a memory with an up-transition fault: bit `bit` of word `addr`
// cannot transition from 0 to 1 (it can be initialized to 1 only by the
// fault-free power-on state, which is 0 here, so effectively it sticks at
// its current value when a rising write is attempted).
type TF struct {
	M    Memory
	Addr int
	Bit  uint
}

// Write stores v, suppressing a 0->1 transition of the faulty bit.
func (f *TF) Write(addr int, v uint64) {
	if addr == f.Addr {
		old := f.M.Read(addr)
		if old>>f.Bit&1 == 0 && v>>f.Bit&1 == 1 {
			v &^= 1 << f.Bit // rising transition fails
		}
	}
	f.M.Write(addr, v)
}

// Read returns the stored word.
func (f *TF) Read(addr int) uint64 { return f.M.Read(addr) }

// Size returns the word count.
func (f *TF) Size() int { return f.M.Size() }

// CFin wraps a memory with an inversion coupling fault: a write that
// causes a transition of bit `Bit` in the aggressor word inverts the same
// bit of the victim word.
type CFin struct {
	M          Memory
	Aggressor  int
	Victim     int
	Bit        uint
	transition uint64
}

// Write stores v and applies the coupling inversion on aggressor
// transitions.
func (f *CFin) Write(addr int, v uint64) {
	if addr == f.Aggressor {
		old := f.M.Read(addr)
		if (old^v)>>f.Bit&1 == 1 {
			vic := f.M.Read(f.Victim)
			f.M.Write(f.Victim, vic^(1<<f.Bit))
		}
	}
	f.M.Write(addr, v)
}

// Read returns the stored word.
func (f *CFin) Read(addr int) uint64 { return f.M.Read(addr) }

// Size returns the word count.
func (f *CFin) Size() int { return f.M.Size() }

// ADF wraps a memory with an address-decoder fault: accesses to BadAddr
// are redirected to MappedTo (cell never addressed on its own).
type ADF struct {
	M        Memory
	BadAddr  int
	MappedTo int
}

func (f *ADF) redirect(addr int) int {
	if addr == f.BadAddr {
		return f.MappedTo
	}
	return addr
}

// Write stores v at the (possibly redirected) address.
func (f *ADF) Write(addr int, v uint64) { f.M.Write(f.redirect(addr), v) }

// Read loads from the (possibly redirected) address.
func (f *ADF) Read(addr int) uint64 { return f.M.Read(f.redirect(addr)) }

// Size returns the word count.
func (f *ADF) Size() int { return f.M.Size() }

// AdjacentShort models an intra-word defect: bits Bit and Bit+1 of one
// word are resistively shorted and read back as the wired-AND of the two
// stored values. With solid data backgrounds the two bits always hold the
// same value, so the short is invisible; a checkerboard background
// sensitizes it.
type AdjacentShort struct {
	M    Memory
	Addr int
	Bit  uint
}

// Write stores v unchanged (the short corrupts reads, not the cells).
func (f *AdjacentShort) Write(addr int, v uint64) { f.M.Write(addr, v) }

// Read returns the word with the shorted pair wired-AND.
func (f *AdjacentShort) Read(addr int) uint64 {
	v := f.M.Read(addr)
	if addr == f.Addr {
		a := v >> f.Bit & 1
		b := v >> (f.Bit + 1) & 1
		and := a & b
		v &^= 1<<f.Bit | 1<<(f.Bit+1)
		v |= and<<f.Bit | and<<(f.Bit+1)
	}
	return v
}

// Size returns the word count.
func (f *AdjacentShort) Size() int { return f.M.Size() }
