package march_test

import (
	"fmt"

	"repro/internal/march"
)

// ExampleTest_Run detects a stuck-at cell with March C-.
func ExampleTest_Run() {
	good := march.NewRAM(8)
	fmt.Println("good memory:", march.MarchCMinus.Run(good, 16, 0) == nil)

	faulty := &march.SAF{M: march.NewRAM(8), Addr: 3, Bit: 5, Value: 1}
	fail := march.MarchCMinus.Run(faulty, 16, 0)
	fmt.Println("fault found at word:", fail.Addr)
	// Output:
	// good memory: true
	// fault found at word: 3
}

// ExampleTest_PatternCount shows the register-file pattern counts feeding
// the paper's equation (12).
func ExampleTest_PatternCount() {
	fmt.Println("RF1 (8 regs):", march.MarchCMinus.PatternCount(8))
	fmt.Println("RF2 (12 regs):", march.MarchCMinus.PatternCount(12))
	// Output:
	// RF1 (8 regs): 80
	// RF2 (12 regs): 120
}
