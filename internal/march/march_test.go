package march

import (
	"fmt"
	"testing"
)

func TestOpsPerCellMatchNames(t *testing.T) {
	if got := MATSPlus.OpsPerCell(); got != 5 {
		t.Errorf("MATS+ is %dN, want 5N", got)
	}
	if got := MarchCMinus.OpsPerCell(); got != 10 {
		t.Errorf("March C- is %dN, want 10N", got)
	}
	if got := MarchB.OpsPerCell(); got != 17 {
		t.Errorf("March B is %dN, want 17N", got)
	}
}

func TestPatternCount(t *testing.T) {
	if got := MarchCMinus.PatternCount(8); got != 80 {
		t.Errorf("March C- over 8 words: %d patterns, want 80", got)
	}
	if got := MATSPlus.PatternCount(12); got != 60 {
		t.Errorf("MATS+ over 12 words: %d patterns, want 60", got)
	}
}

func TestGoodMemoryPassesAllTests(t *testing.T) {
	for _, alg := range []Test{MATSPlus, MarchCMinus, MarchB} {
		for _, bg := range []uint64{0x0000, 0xA5A5} {
			m := NewRAM(16)
			if f := alg.Run(m, 16, bg); f != nil {
				t.Errorf("%s(bg=%#x) failed on fault-free memory: %v", alg.Name, bg, f)
			}
		}
	}
}

func TestAllAlgorithmsDetectStuckAt(t *testing.T) {
	for _, alg := range []Test{MATSPlus, MarchCMinus, MarchB} {
		for _, sa := range []uint64{0, 1} {
			for _, addr := range []int{0, 7, 15} {
				m := &SAF{M: NewRAM(16), Addr: addr, Bit: 3, Value: sa}
				if f := alg.Run(m, 16, 0); f == nil {
					t.Errorf("%s missed SAF%d at word %d", alg.Name, sa, addr)
				}
			}
		}
	}
}

func TestTransitionFaultDetection(t *testing.T) {
	// An up-transition fault must be caught by March C- and March B (write
	// 1, later read 1). MATS+ also catches simple TFs via its r1 element.
	for _, alg := range []Test{MATSPlus, MarchCMinus, MarchB} {
		m := &TF{M: NewRAM(8), Addr: 4, Bit: 0}
		if f := alg.Run(m, 8, 0); f == nil {
			t.Errorf("%s missed up-transition fault", alg.Name)
		}
	}
}

func TestMarchCMinusDetectsInversionCoupling(t *testing.T) {
	// CFin in both aggressor/victim address orders: the symmetric up and
	// down elements of March C- catch both; MATS+ provably misses some.
	for _, pair := range [][2]int{{2, 9}, {9, 2}} {
		m := &CFin{M: NewRAM(16), Aggressor: pair[0], Victim: pair[1], Bit: 5}
		if f := MarchCMinus.Run(m, 16, 0); f == nil {
			t.Errorf("March C- missed CFin aggressor=%d victim=%d", pair[0], pair[1])
		}
	}
}

func TestMATSPlusWeakerThanMarchCMinusOnCoupling(t *testing.T) {
	// Find at least one CFin configuration MATS+ misses while March C-
	// detects it — the classical coverage separation between 5N and 10N.
	missed, caught := 0, 0
	for agg := 0; agg < 8; agg++ {
		for vic := 0; vic < 8; vic++ {
			if agg == vic {
				continue
			}
			mMats := &CFin{M: NewRAM(8), Aggressor: agg, Victim: vic, Bit: 1}
			mC := &CFin{M: NewRAM(8), Aggressor: agg, Victim: vic, Bit: 1}
			fMats := MATSPlus.Run(mMats, 8, 0)
			fC := MarchCMinus.Run(mC, 8, 0)
			if fC == nil {
				t.Fatalf("March C- missed CFin agg=%d vic=%d", agg, vic)
			}
			if fMats == nil {
				missed++
			} else {
				caught++
			}
		}
	}
	if missed == 0 {
		t.Error("MATS+ detected every CFin; expected a coverage gap vs March C-")
	}
	if caught == 0 {
		t.Error("MATS+ caught no CFin at all; runner suspicious")
	}
}

func TestAddressDecoderFaultDetection(t *testing.T) {
	for _, alg := range []Test{MATSPlus, MarchCMinus, MarchB} {
		m := &ADF{M: NewRAM(8), BadAddr: 3, MappedTo: 5}
		if f := alg.Run(m, 8, 0); f == nil {
			t.Errorf("%s missed address-decoder fault", alg.Name)
		}
	}
}

func TestMultiPortPatternCount(t *testing.T) {
	base := MarchCMinus.PatternCount(8)
	// 1w+1r = 2 ports: no extra pairs beyond the baseline.
	if got := MultiPortPatternCount(MarchCMinus, 8, 1, 1); got != base {
		t.Errorf("2-port count %d, want base %d", got, base)
	}
	// 1w+2r = 3 ports: 3 pairs, minus the baseline pair = 2 extra pairs.
	want := base + 2*8*2
	if got := MultiPortPatternCount(MarchCMinus, 8, 1, 2); got != want {
		t.Errorf("3-port count %d, want %d", got, want)
	}
	// More ports must never cost less.
	prev := 0
	for ports := 2; ports <= 6; ports++ {
		got := MultiPortPatternCount(MarchCMinus, 8, 1, ports-1)
		if got < prev {
			t.Errorf("pattern count not monotone in ports: %d after %d", got, prev)
		}
		prev = got
	}
}

func TestFailureError(t *testing.T) {
	f := &Failure{Element: 1, OpIndex: 0, Addr: 3, Got: 0, Want: 1}
	if f.Error() == "" {
		t.Fatal("empty failure message")
	}
}

func TestRunHonoursWidthMask(t *testing.T) {
	// Background wider than the memory width must be masked, not trip the
	// comparison.
	m := NewRAM(4)
	if f := MarchCMinus.Run(m, 8, 0xFFFF); f != nil {
		t.Fatalf("width masking broken: %v", f)
	}
}

func TestStringers(t *testing.T) {
	for _, s := range []fmt.Stringer{W0, W1, R0, R1, Up, Down, Any, MATSPlus, MarchCMinus, MarchB} {
		if s.String() == "" {
			t.Fatalf("empty String() for %T", s)
		}
	}
}

func TestAdjacentShortNeedsCheckerboard(t *testing.T) {
	// Solid backgrounds can never sensitize an intra-word short...
	for _, bg := range []uint64{0x0000, 0xFFFF} {
		m := &AdjacentShort{M: NewRAM(8), Addr: 3, Bit: 4}
		if f := MarchCMinus.Run(m, 16, bg); f != nil {
			t.Errorf("solid background %#x claimed to detect an intra-word short: %v", bg, f)
		}
	}
	// ...the checkerboard does.
	m := &AdjacentShort{M: NewRAM(8), Addr: 3, Bit: 4}
	if f := MarchCMinus.Run(m, 16, 0xAAAA); f == nil {
		t.Error("checkerboard missed the intra-word short")
	}
	// And the multi-background runner therefore catches it.
	m2 := &AdjacentShort{M: NewRAM(8), Addr: 3, Bit: 4}
	if f := MarchCMinus.RunWithBackgrounds(m2, 16, StandardBackgrounds); f == nil {
		t.Error("standard backgrounds missed the intra-word short")
	}
}

func TestRunWithBackgroundsGoodMemory(t *testing.T) {
	m := NewRAM(8)
	if f := MarchCMinus.RunWithBackgrounds(m, 16, StandardBackgrounds); f != nil {
		t.Fatalf("fault-free memory failed: %v", f)
	}
	// Classic faults are still caught through the multi-background runner.
	saf := &SAF{M: NewRAM(8), Addr: 2, Bit: 9, Value: 0}
	if f := MarchCMinus.RunWithBackgrounds(saf, 16, StandardBackgrounds); f == nil {
		t.Error("SAF missed")
	}
}
