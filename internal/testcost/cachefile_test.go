package testcost

import (
	"bytes"
	"encoding/json"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gatelib"
	"repro/internal/obs"
	"repro/internal/tta"
)

// coldAnnotator returns a narrow-width annotator that has evaluated the
// figure-9 architecture, plus its fully populated cache serialization.
func coldAnnotator(t *testing.T) (*Annotator, []byte) {
	t.Helper()
	a := NewAnnotator(8, 7)
	arch := tta.Figure9()
	arch.Width = 8
	if _, err := a.Evaluate(arch); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return a, buf.Bytes()
}

func TestWarmStartSkipsAllATPG(t *testing.T) {
	cold, blob := coldAnnotator(t)
	arch := tta.Figure9()
	arch.Width = 8
	want, err := cold.Evaluate(arch)
	if err != nil {
		t.Fatal(err)
	}

	warm := NewAnnotator(8, 7)
	reg := obs.NewRegistry()
	warm.Obs = reg
	if err := warm.Load(bytes.NewReader(blob)); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("testcost.cache.loaded").Value(); got <= 0 {
		t.Fatalf("loaded counter = %d, want > 0", got)
	}
	got, err := warm.Evaluate(arch)
	if err != nil {
		t.Fatal(err)
	}

	// The warm run must not have run a single ATPG: zero cache misses
	// (components) and no atpg counters (sockets included — socket runs
	// are instrumented too).
	if miss := reg.Counter("testcost.cache.miss").Value(); miss != 0 {
		t.Errorf("warm run recorded %d cache misses, want 0", miss)
	}
	snap := reg.Snapshot()
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "atpg.") && v > 0 {
			t.Errorf("warm run still ran ATPG: counter %s = %d", name, v)
		}
	}

	// And it must be value-identical to the cold evaluation.
	if got.Total != want.Total || got.FullScanTotal != want.FullScanTotal {
		t.Errorf("warm totals (%d, %d) differ from cold (%d, %d)",
			got.Total, got.FullScanTotal, want.Total, want.FullScanTotal)
	}
	if len(got.Components) != len(want.Components) {
		t.Fatalf("component rows %d vs %d", len(got.Components), len(want.Components))
	}
	for i := range got.Components {
		if got.Components[i] != want.Components[i] {
			t.Errorf("component %d differs: warm %+v cold %+v", i, got.Components[i], want.Components[i])
		}
	}
}

func TestCacheFileRoundTrip(t *testing.T) {
	a, _ := coldAnnotator(t)
	path := filepath.Join(t.TempDir(), "ann.json")
	if err := a.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	b := NewAnnotator(8, 7)
	if err := b.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.cache) != len(a.cache) {
		t.Fatalf("loaded %d entries, saved %d", len(b.cache), len(a.cache))
	}
	for k, an := range a.cache {
		if b.cache[k] != an {
			t.Errorf("entry %q differs: %+v vs %+v", k, b.cache[k], an)
		}
	}
}

func TestCacheLoadMissingFile(t *testing.T) {
	a := NewAnnotator(8, 7)
	err := a.LoadFile(filepath.Join(t.TempDir(), "absent.json"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file error = %v, want fs.ErrNotExist", err)
	}
}

func TestCacheHeaderMismatch(t *testing.T) {
	_, blob := coldAnnotator(t)
	f, rec, err := decodeCacheData(blob)
	if err != nil || rec.Torn {
		t.Fatalf("decode saved cache: %v (recovery %+v)", err, rec)
	}
	cases := []struct {
		name   string
		mutate func(*cacheFile)
		loader *Annotator
	}{
		{"version", func(c *cacheFile) { c.Version = CacheFormatVersion + 1 }, NewAnnotator(8, 7)},
		{"library", func(c *cacheFile) { c.Library = "gatelib/v0" }, NewAnnotator(8, 7)},
		{"width", nil, NewAnnotator(16, 7)},
		{"seed", nil, NewAnnotator(8, 11)},
		{"march", func(c *cacheFile) { c.March = "bogus" }, NewAnnotator(8, 7)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := f // copy header; entries shared is fine, they are not mutated
			if tc.mutate != nil {
				tc.mutate(&c)
			}
			raw, err := json.Marshal(&c)
			if err != nil {
				t.Fatal(err)
			}
			loadErr := tc.loader.Load(bytes.NewReader(raw))
			var mismatch *CacheMismatchError
			if !errors.As(loadErr, &mismatch) {
				t.Fatalf("stale %s header loaded without CacheMismatchError (err=%v)", tc.name, loadErr)
			}
			tc.loader.mu.Lock()
			n := len(tc.loader.cache)
			tc.loader.mu.Unlock()
			if n != 0 {
				t.Errorf("mismatching file still populated %d entries", n)
			}
		})
	}
}

func TestCacheCorruptFile(t *testing.T) {
	a := NewAnnotator(8, 7)
	if err := a.Load(strings.NewReader("{not json")); err == nil {
		t.Fatal("corrupt cache accepted")
	}
}

func TestLibraryKeyInFile(t *testing.T) {
	// The persisted header must carry the live library generation, so a
	// generator bump invalidates old files automatically.
	_, blob := coldAnnotator(t)
	f, rec, err := decodeCacheData(blob)
	if err != nil || rec.Torn {
		t.Fatalf("decode saved cache: %v (recovery %+v)", err, rec)
	}
	if f.Library != gatelib.LibraryKey || f.Version != CacheFormatVersion {
		t.Fatalf("header %+v does not carry the live library key/version", f)
	}
	if f.Sockets == nil || f.Sockets.In.NP <= 0 || f.Sockets.Out.NP <= 0 {
		t.Fatalf("socket annotations missing from the file: %+v", f.Sockets)
	}
}

// TestMergeFiles pins the per-shard cache union: existing entries win,
// missing files are skipped, and corruption aborts with a typed error.
func TestMergeFiles(t *testing.T) {
	a, _ := coldAnnotator(t)
	dir := t.TempDir()
	shard0 := filepath.Join(dir, "cache.shard0")
	if err := a.SaveFile(shard0); err != nil {
		t.Fatal(err)
	}
	b := NewAnnotator(8, 7)
	arch := tta.Figure9()
	arch.Width = 8
	arch.Buses++ // different CD -> at least some distinct socket demand
	if _, err := b.Evaluate(arch); err != nil {
		t.Fatal(err)
	}
	shard1 := filepath.Join(dir, "cache.shard1")
	if err := b.SaveFile(shard1); err != nil {
		t.Fatal(err)
	}

	merged := NewAnnotator(8, 7)
	n, err := merged.MergeFiles(shard0, filepath.Join(dir, "absent.shard9"), shard1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("MergeFiles loaded %d files, want 2 (one was absent)", n)
	}
	merged.mu.Lock()
	got := len(merged.cache)
	merged.mu.Unlock()
	a.mu.Lock()
	want := len(a.cache)
	a.mu.Unlock()
	if got < want {
		t.Fatalf("merged cache holds %d entries, fewer than shard 0 alone (%d)", got, want)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := merged.MergeFiles(bad); err == nil {
		t.Fatal("corrupt shard cache accepted by MergeFiles")
	}
}
