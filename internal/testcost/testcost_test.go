package testcost

import (
	"testing"

	"repro/internal/tta"
)

// sharedAnn amortizes the one-time ATPG back-annotation across tests.
var sharedAnn = NewAnnotator(16, 7)

func evalFigure9(t *testing.T) *ArchCost {
	t.Helper()
	cost, err := sharedAnn.Evaluate(tta.Figure9())
	if err != nil {
		t.Fatal(err)
	}
	return cost
}

func TestTable1StructureOnFigure9(t *testing.T) {
	cost := evalFigure9(t)
	if len(cost.Components) != 7 {
		t.Fatalf("%d component rows, want 7", len(cost.Components))
	}
	var sum, scanSum int
	for _, c := range cost.Components {
		switch c.Kind {
		case tta.ALU, tta.CMP:
			if c.FTfu <= 0 || c.FTrf != 0 {
				t.Errorf("%s: FTfu=%d FTrf=%d", c.Name, c.FTfu, c.FTrf)
			}
			if c.Excluded {
				t.Errorf("%s wrongly excluded", c.Name)
			}
		case tta.RF:
			if c.FTrf <= 0 || c.FTfu != 0 {
				t.Errorf("%s: FTrf=%d FTfu=%d", c.Name, c.FTrf, c.FTfu)
			}
		default:
			if !c.Excluded {
				t.Errorf("%s (always-present) not excluded from the total", c.Name)
			}
		}
		if !c.Excluded {
			sum += c.OurCycles()
			scanSum += c.FullScanCycles
		}
	}
	if cost.Total != sum {
		t.Errorf("Total=%d, component sum=%d", cost.Total, sum)
	}
	if cost.FullScanTotal != scanSum {
		t.Errorf("FullScanTotal=%d, component sum=%d", cost.FullScanTotal, scanSum)
	}
}

func TestOurApproachBeatsFullScanPerComponent(t *testing.T) {
	// The paper's headline comparison (Table 1): the functional
	// application of the structural patterns needs significantly fewer
	// cycles than full scan for every datapath component.
	cost := evalFigure9(t)
	for _, c := range cost.Components {
		if c.Excluded {
			continue
		}
		if c.OurCycles() >= c.FullScanCycles {
			t.Errorf("%s: our %d cycles not below full scan %d", c.Name, c.OurCycles(), c.FullScanCycles)
		}
		ratio := float64(c.FullScanCycles) / float64(c.OurCycles())
		if ratio < 1.2 {
			t.Errorf("%s: advantage ratio %.2f too small to be significant", c.Name, ratio)
		}
		t.Logf("%-5s full-scan=%6d ours=%5d (%.1fx) nl=%d np=%d CD=%d FC=%.2f%%",
			c.Name, c.FullScanCycles, c.OurCycles(), ratio, c.NL, c.NP, c.CD, 100*c.FaultCoverage)
	}
}

func TestFaultCoverageHigh(t *testing.T) {
	cost := evalFigure9(t)
	for _, c := range cost.Components {
		if c.Kind == tta.RF || c.Excluded {
			continue // RF functional coverage comes from march, not ATPG
		}
		if c.FaultCoverage < 0.99 {
			t.Errorf("%s coverage %.4f < 0.99", c.Name, c.FaultCoverage)
		}
	}
}

func TestCDWithinPaperBounds(t *testing.T) {
	cost := evalFigure9(t)
	for _, c := range cost.Components {
		if c.Excluded {
			continue
		}
		if c.CD < tta.MinCD || c.CD > tta.MinCD+2 {
			t.Errorf("%s: CD=%d outside [3,5]", c.Name, c.CD)
		}
	}
}

func TestFewerBusesRaiseCost(t *testing.T) {
	// Equation (11): the serialization factor ceil(n_conn/n_b) grows as
	// buses shrink; so does CD. Total cost must be monotonically
	// non-increasing in the bus count.
	prev := -1
	for buses := 1; buses <= 4; buses++ {
		a := tta.Figure9().Clone()
		a.Buses = buses
		tta.AssignPorts(a, tta.SpreadFirst)
		cost, err := sharedAnn.Evaluate(a)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && cost.Total > prev {
			t.Errorf("buses=%d total %d exceeds %d at fewer buses", buses, cost.Total, prev)
		}
		if prev >= 0 && buses == 2 && cost.Total == prev {
			t.Log("note: 1->2 buses made no difference")
		}
		prev = cost.Total
	}
	// And strictly: 1 bus must be more expensive than 4 buses.
	a1 := tta.Figure9().Clone()
	a1.Buses = 1
	tta.AssignPorts(a1, tta.SpreadFirst)
	a4 := tta.Figure9().Clone()
	a4.Buses = 4
	tta.AssignPorts(a4, tta.SpreadFirst)
	c1, _ := sharedAnn.Evaluate(a1)
	c4, _ := sharedAnn.Evaluate(a4)
	if c1.Total <= c4.Total {
		t.Errorf("1-bus total %d not above 4-bus total %d", c1.Total, c4.Total)
	}
}

func TestFigure6PortAssignmentChangesCost(t *testing.T) {
	// Two identical FUs whose ports connect differently have different
	// test costs (the paper's figure 6): force the contrast via CD.
	a := &tta.Architecture{
		Name: "fig6", Width: 16, Buses: 3,
		Components: []tta.Component{
			tta.NewFU(tta.ALU, "FU1"),
			tta.NewFU(tta.ALU, "FU2"),
			tta.NewRF("RF", 8, 1, 1),
			tta.NewIMM("IMM"),
		},
	}
	// FU1: every port on its own bus. FU2: operand+trigger share bus 0.
	a.Components[0].Ports[0].Bus = 0
	a.Components[0].Ports[1].Bus = 1
	a.Components[0].Ports[2].Bus = 2
	a.Components[1].Ports[0].Bus = 0
	a.Components[1].Ports[1].Bus = 0
	a.Components[1].Ports[2].Bus = 2
	a.Components[2].Ports[0].Bus = 1
	a.Components[2].Ports[1].Bus = 2
	a.Components[3].Ports[0].Bus = 0
	cost, err := sharedAnn.Evaluate(a)
	if err != nil {
		t.Fatal(err)
	}
	if !(cost.Components[0].FTfu < cost.Components[1].FTfu) {
		t.Errorf("identical FUs: FTfu(fu1)=%d not below FTfu(fu2)=%d",
			cost.Components[0].FTfu, cost.Components[1].FTfu)
	}
}

func TestRFCostEquation12(t *testing.T) {
	// Parallel ports help while they fit the buses...
	base := rfCost(100, 3, 1, 1, 2)
	par := rfCost(100, 3, 2, 2, 2)
	if par >= base {
		t.Errorf("2w2r cost %d not below 1w1r cost %d at 2 buses", par, base)
	}
	// ...but once both port counts exceed the buses the cost climbs (the
	// marching elements serialize).
	over := rfCost(100, 3, 3, 3, 2)
	if over <= par {
		t.Errorf("3w3r on 2 buses cost %d not above 2w2r %d", over, par)
	}
}

func TestAnnotationCaching(t *testing.T) {
	a := tta.Figure9()
	c1, err := sharedAnn.Evaluate(a)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := sharedAnn.Evaluate(a)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Total != c2.Total {
		t.Fatalf("non-deterministic evaluation: %d vs %d", c1.Total, c2.Total)
	}
}

func TestEvaluateRejectsUnassigned(t *testing.T) {
	a := &tta.Architecture{
		Name: "raw", Width: 16, Buses: 2,
		Components: []tta.Component{tta.NewFU(tta.ALU, "ALU")},
	}
	if _, err := sharedAnn.Evaluate(a); err == nil {
		t.Fatal("unassigned architecture accepted")
	}
}

func TestAreaDelayAnnotation(t *testing.T) {
	a := tta.Figure9()
	var prevArea float64
	for ci := range a.Components {
		area, delay, err := sharedAnn.AreaDelay(&a.Components[ci])
		if err != nil {
			t.Fatal(err)
		}
		if area <= 0 || delay <= 0 {
			t.Errorf("%s: area=%.1f delay=%.1f", a.Components[ci].Name, area, delay)
		}
		_ = prevArea
	}
	// RF2 (12 regs) must be larger than RF1 (8 regs).
	rfs := a.ComponentsOf(tta.RF)
	a1, _, _ := sharedAnn.AreaDelay(&a.Components[rfs[0]])
	a2, _, _ := sharedAnn.AreaDelay(&a.Components[rfs[1]])
	if a2 <= a1 {
		t.Errorf("RF2 area %.1f not above RF1 area %.1f", a2, a1)
	}
	in, out, err := sharedAnn.SocketArea()
	if err != nil || in <= 0 || out <= 0 {
		t.Errorf("socket areas in=%.1f out=%.1f err=%v", in, out, err)
	}
}

func TestScanChainLengthsInPaperRange(t *testing.T) {
	// The paper reports n_l = 58 for the 16-bit ALU/CMP (component + its
	// sockets); our generated structures should land nearby.
	cost := evalFigure9(t)
	for _, c := range cost.Components {
		if c.Kind == tta.ALU || c.Kind == tta.CMP {
			if c.NL < 50 || c.NL > 75 {
				t.Errorf("%s: nl=%d outside the expected 50-75 window", c.Name, c.NL)
			}
		}
	}
}
