// Warm-start annotation cache: the annotator's back-annotated pattern
// counts persisted as versioned JSON, so a repeated exploration over the
// same library generation, width and seed skips every gate-level ATPG run
// (component and socket alike) and goes straight to the cost model.
//
// The file is keyed by everything that determines an annotation's value:
// the cache format version, the gate-level library generation
// (gatelib.LibraryKey), the data-path width, the ATPG seed and the march
// algorithm. A header mismatch invalidates the whole file — Load reports
// it as a *CacheMismatchError and leaves the annotator cold, never mixing
// stale entries into a fresh run.
//
// On disk the cache uses the same CRC32C record framing as dse
// checkpoints (package durable): one compact header record, then one
// record per annotation in sorted key order, written through an
// fsync-before-rename atomic path. A torn or bit-flipped file warm-loads
// its longest valid record prefix (the cache is an optimization — a
// shorter prefix just means a few re-measured annotations); files with
// no usable prefix load cold with a typed error, and LoadFile quarantines
// them to *.corrupt. Pre-framing whole-document files still load, flagged
// by a one-time legacy-format obs event.
package testcost

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math"
	"os"
	"sort"

	"repro/internal/durable"
	"repro/internal/faultinject"
	"repro/internal/gatelib"
	"repro/internal/obs"
)

// CacheFormatVersion is the on-disk format version. Bump it whenever the
// entry layout or the meaning of a field changes.
const CacheFormatVersion = 1

// cacheFile is the serialized form of an annotator's cache.
type cacheFile struct {
	Version int    `json:"version"`
	Library string `json:"library"`
	Width   int    `json:"width"`
	Seed    int64  `json:"seed"`
	March   string `json:"march"`

	// Sockets carries the socket-library annotations (input, output) so a
	// warm start skips the lazy socket ATPG too.
	Sockets *socketCache `json:"sockets,omitempty"`

	// Entries maps annotation-cache keys (e.g. "alu/16/ripple") to their
	// back-annotated values. Populated in the legacy whole-document
	// format; empty in the framed header record (entries follow as
	// records).
	Entries map[string]cacheEntry `json:"entries,omitempty"`
}

// cacheRecord is one framed annotation record: the cache key and its
// value, compact JSON on a single line.
type cacheRecord struct {
	Key   string     `json:"k"`
	Entry cacheEntry `json:"e"`
}

// cacheEntry is one persisted annotation.
type cacheEntry struct {
	NP       int     `json:"np"`
	NL       int     `json:"nl"`
	Coverage float64 `json:"coverage"`
	ScanNP   int     `json:"scan_np"`
	Area     float64 `json:"area"`
	Delay    float64 `json:"delay"`
}

// socketCache persists the two socket annotations.
type socketCache struct {
	In  cacheEntry `json:"in"`
	Out cacheEntry `json:"out"`
}

func toEntry(an annotation) cacheEntry {
	return cacheEntry{NP: an.np, NL: an.nl, Coverage: an.coverage, ScanNP: an.scanNP, Area: an.area, Delay: an.delay}
}

func fromEntry(e cacheEntry) annotation {
	return annotation{np: e.NP, nl: e.NL, coverage: e.Coverage, scanNP: e.ScanNP, area: e.Area, delay: e.Delay}
}

// CacheMismatchError reports a structurally valid cache file whose header
// does not match the loading annotator — a stale or foreign cache. The
// annotator is left unchanged; callers typically warn and start cold.
type CacheMismatchError struct {
	Field string // header field that differs
	Want  string // the annotator's value
	Got   string // the file's value
}

func (e *CacheMismatchError) Error() string {
	return fmt.Sprintf("testcost: annotation cache %s mismatch: file has %s, annotator wants %s", e.Field, e.Got, e.Want)
}

// CacheCorruptError reports a warm-start cache file that could not be
// decoded or failed structural validation — truncation, bit flips, or
// any IO failure while reading. The annotator is left unchanged; callers
// (ttadse -cache) typically log a warning and continue cold, rewriting
// the file after the run.
type CacheCorruptError struct {
	Reason string // what failed ("decode", "entry alu/16/ripple", ...)
	Err    error  // underlying error, when one exists
}

func (e *CacheCorruptError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("testcost: corrupt annotation cache (%s): %v", e.Reason, e.Err)
	}
	return fmt.Sprintf("testcost: corrupt annotation cache (%s)", e.Reason)
}

func (e *CacheCorruptError) Unwrap() error { return e.Err }

// validEntry rejects values no honest Save could have produced — the
// cheap structural screen behind CacheCorruptError. JSON bit flips that
// keep the syntax valid usually land here (negative counts, NaN/Inf
// floats, coverage outside [0, 1]).
func validEntry(e cacheEntry) error {
	if e.NP < 0 || e.NL < 0 || e.ScanNP < 0 {
		return fmt.Errorf("negative count (np=%d nl=%d scan_np=%d)", e.NP, e.NL, e.ScanNP)
	}
	for _, v := range [...]float64{e.Coverage, e.Area, e.Delay} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("non-finite float")
		}
	}
	if e.Coverage < 0 || e.Coverage > 1 {
		return fmt.Errorf("coverage %v outside [0, 1]", e.Coverage)
	}
	if e.Area < 0 || e.Delay < 0 {
		return fmt.Errorf("negative area/delay")
	}
	return nil
}

// Save serializes the annotator's annotation cache (socket annotations
// included — they are forced if not yet computed) as versioned JSON.
// Degraded annotations (analytical bounds from an exhausted ATPG budget)
// are deliberately not persisted: a later run with a larger or absent
// budget must re-measure them rather than warm-start from a bound. Call
// Save after the evaluations sharing the annotator have finished; Save
// must not run concurrently with Load.
func (a *Annotator) Save(w io.Writer) error {
	if err := a.Inject.Hit(faultinject.CacheWrite); err != nil {
		return fmt.Errorf("testcost: writing annotation cache: %w", err)
	}
	data, err := a.encodeCache()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// encodeCache renders the annotator's cache in the framed on-disk
// format: one compact header record (sockets included — they are forced
// if not yet computed), then one record per annotation in sorted key
// order — deterministic bytes for identical content.
func (a *Annotator) encodeCache() ([]byte, error) {
	if err := a.sockets(); err != nil {
		return nil, err
	}
	f := cacheFile{
		Version: CacheFormatVersion,
		Library: gatelib.LibraryKey,
		Width:   a.Width,
		Seed:    a.Seed,
		March:   a.March.String(),
		Sockets: &socketCache{In: toEntry(a.sockIn), Out: toEntry(a.sockOut)},
	}
	head, err := json.Marshal(&f)
	if err != nil {
		return nil, err
	}
	buf := durable.AppendRecord(nil, head)
	a.mu.Lock()
	keys := make([]string, 0, len(a.cache))
	for k, an := range a.cache {
		if an.degraded {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p, err := json.Marshal(&cacheRecord{Key: k, Entry: toEntry(a.cache[k])})
		if err != nil {
			a.mu.Unlock()
			return nil, err
		}
		buf = durable.AppendRecord(buf, p)
	}
	a.mu.Unlock()
	return buf, nil
}

// Load populates the annotation cache from a warm-start file written by
// Save. On a header mismatch (format version, library generation, width,
// seed or march algorithm) it returns a *CacheMismatchError; on a file
// that cannot be decoded or fails structural validation (truncation, bit
// flips, IO errors) a *CacheCorruptError. In both cases the annotator is
// unchanged — stale or damaged entries never mix into a fresh run.
// Entries merge into the live cache without overwriting existing keys.
// Call Load before sharing the annotator across goroutines.
func (a *Annotator) Load(r io.Reader) error {
	if err := a.Inject.Hit(faultinject.CacheRead); err != nil {
		return &CacheCorruptError{Reason: "read", Err: err}
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return &CacheCorruptError{Reason: "read", Err: err}
	}
	f, rec, derr := decodeCacheData(data)
	if rec.CRCFail {
		a.Obs.Counter("durability.crc_fail").Inc()
	}
	if derr != nil {
		return &CacheCorruptError{Reason: "decode", Err: derr}
	}
	for _, m := range []struct{ field, want, got string }{
		{"format version", fmt.Sprint(CacheFormatVersion), fmt.Sprint(f.Version)},
		{"library key", gatelib.LibraryKey, f.Library},
		{"width", fmt.Sprint(a.Width), fmt.Sprint(f.Width)},
		{"seed", fmt.Sprint(a.Seed), fmt.Sprint(f.Seed)},
		{"march algorithm", a.March.String(), f.March},
	} {
		if m.want != m.got {
			return &CacheMismatchError{Field: m.field, Want: m.want, Got: m.got}
		}
	}
	for k, e := range f.Entries {
		if err := validEntry(e); err != nil {
			return &CacheCorruptError{Reason: fmt.Sprintf("entry %q", k), Err: err}
		}
	}
	if f.Sockets != nil {
		if err := validEntry(f.Sockets.In); err != nil {
			return &CacheCorruptError{Reason: "socket in", Err: err}
		}
		if err := validEntry(f.Sockets.Out); err != nil {
			return &CacheCorruptError{Reason: "socket out", Err: err}
		}
	}
	loaded := 0
	a.mu.Lock()
	for k, e := range f.Entries {
		if _, ok := a.cache[k]; !ok {
			a.cache[k] = fromEntry(e)
			loaded++
		}
	}
	a.mu.Unlock()
	if f.Sockets != nil && !a.sockDone {
		a.sockIn = fromEntry(f.Sockets.In)
		a.sockOut = fromEntry(f.Sockets.Out)
		a.sockNP = a.sockIn.np
		if a.sockOut.np > a.sockNP {
			a.sockNP = a.sockOut.np
		}
		a.sockWarm = true
	}
	if rec.Torn {
		a.Obs.Counter("durability.prefix_recovered").Inc()
		a.Obs.Emit(obs.Event{Kind: "warning", Msg: fmt.Sprintf(
			"annotation cache was torn (%s); warm-loaded %d entries from the valid prefix", rec.Cause, loaded)})
	}
	if rec.Legacy {
		a.Obs.Counter("durability.legacy_loads").Inc()
		a.Obs.Emit(obs.Event{Kind: "warning", Msg:
			"annotation cache is in the legacy (pre-CRC) format; the next save rewrites it framed"})
	}
	a.Obs.Counter("testcost.cache.loaded").Add(int64(loaded))
	return nil
}

// decodeCacheData parses either cache format via durable.DecodeDocument;
// see decodeCheckpointData in internal/dse for the twin.
func decodeCacheData(data []byte) (cacheFile, durable.Recovery, error) {
	var f cacheFile
	rec, err := durable.DecodeDocument(data,
		func(doc []byte) error { return json.Unmarshal(doc, &f) },
		func(head []byte) error {
			if err := json.Unmarshal(head, &f); err != nil {
				return err
			}
			if f.Entries == nil {
				f.Entries = make(map[string]cacheEntry)
			}
			return nil
		},
		func(p []byte) error {
			var r cacheRecord
			if err := json.Unmarshal(p, &r); err != nil {
				return err
			}
			f.Entries[r.Key] = r.Entry
			return nil
		})
	return f, rec, err
}

// SaveFile writes the cache to path through the crash-safe atomic path
// (unique temp file, fsync, rename, directory fsync): a crash mid-save
// leaves the previous cache intact, never a torn one.
func (a *Annotator) SaveFile(path string) error {
	data, err := a.encodeCache()
	if err != nil {
		return err
	}
	if err := durable.WriteFileAtomic(path, data, a.Inject, faultinject.CacheWrite); err != nil {
		return fmt.Errorf("testcost: writing annotation cache: %w", err)
	}
	return nil
}

// LoadFile reads a warm-start cache from path (see Load). A missing file
// is reported via the usual fs.ErrNotExist wrapping, so callers can treat
// it as an ordinary cold start. A file Load rejects as corrupt (not a
// read failure — those may be transient) is quarantined to *.corrupt and
// reported as a *durable.CorruptArtifactError wrapping the
// *CacheCorruptError, so the evidence survives while the run rewrites a
// fresh cache.
func (a *Annotator) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	err = a.Load(f)
	f.Close()
	var cc *CacheCorruptError
	if errors.As(err, &cc) && cc.Reason != "read" {
		q := durable.Quarantine(path)
		a.Obs.Counter("durability.quarantined").Inc()
		qerr := &durable.CorruptArtifactError{Artifact: "annotation cache", Path: path, QuarantinedTo: q, Err: cc}
		a.Obs.Emit(obs.Event{Kind: "warning", Msg: qerr.Error()})
		return qerr
	}
	return err
}

// MergeFiles unions the per-shard cache files of a sharded exploration
// into this annotator: each path is loaded in order with Load's
// never-overwrite rule (existing annotations win, so the seed cache the
// shards started from stays authoritative), and missing files are
// skipped — a shard that annotated nothing new may not have written one.
// It returns how many files were actually loaded; the first corrupt or
// mismatched file aborts with that typed error.
func (a *Annotator) MergeFiles(paths ...string) (int, error) {
	loaded := 0
	for _, path := range paths {
		err := a.LoadFile(path)
		if errors.Is(err, fs.ErrNotExist) {
			continue
		}
		if err != nil {
			return loaded, err
		}
		loaded++
	}
	return loaded, nil
}
