package testcost

import (
	"context"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/tta"
)

func boundTestArch() *tta.Architecture {
	a := tta.Figure9().Clone()
	tta.AssignPorts(a, tta.SpreadFirst)
	return a
}

// TestBoundTierPessimisticAndDeterministic: the cheap tier never
// flatters — its total is >= the converged total — and repeated
// evaluations are identical.
func TestBoundTierPessimisticAndDeterministic(t *testing.T) {
	ann := NewAnnotator(16, 7)
	arch := boundTestArch()
	b1, err := ann.EvaluateBoundContext(context.Background(), arch)
	if err != nil {
		t.Fatal(err)
	}
	if !b1.Degraded {
		t.Error("fresh bound-tier evaluation must be marked Degraded")
	}
	b2, err := ann.EvaluateBoundContext(context.Background(), arch)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Total != b2.Total || b1.FullScanTotal != b2.FullScanTotal {
		t.Fatalf("bound tier not deterministic: %d/%d then %d/%d",
			b1.Total, b1.FullScanTotal, b2.Total, b2.FullScanTotal)
	}
	exact, err := ann.EvaluateContext(context.Background(), arch)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Degraded {
		t.Fatal("unbudgeted exact evaluation must not degrade")
	}
	if b1.Total < exact.Total {
		t.Errorf("bound total %d below exact total %d: the screen flattered a candidate", b1.Total, exact.Total)
	}
	// Per-component: bound n_p >= measured n_p for cost-bearing FUs (RFs
	// use march counts in both tiers, so they agree exactly).
	for i, bc := range b1.Components {
		ec := exact.Components[i]
		if bc.Name != ec.Name {
			t.Fatalf("component order differs between tiers: %s vs %s", bc.Name, ec.Name)
		}
		if bc.Kind == tta.RF && bc.NP != ec.NP {
			t.Errorf("%s: march count differs between tiers: %d vs %d", bc.Name, bc.NP, ec.NP)
		}
		if bc.NP < ec.NP {
			t.Errorf("%s: bound np %d below measured %d", bc.Name, bc.NP, ec.NP)
		}
	}
}

// TestBoundTierIndependentOfExactCache: the cheap tier is a pure
// function of the architecture — a warm exact cache must not change its
// answer, or the guided search's trajectory would depend on annotator
// warmth (daemon pools, warm-start files, checkpoint resumes).
func TestBoundTierIndependentOfExactCache(t *testing.T) {
	cold := NewAnnotator(16, 7)
	arch := boundTestArch()
	ref, err := cold.EvaluateBoundContext(context.Background(), arch)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewAnnotator(16, 7)
	reg := obs.NewRegistry()
	warm.Obs = reg
	if _, err := warm.EvaluateContext(context.Background(), arch); err != nil {
		t.Fatal(err)
	}
	b, err := warm.EvaluateBoundContext(context.Background(), arch)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Degraded {
		t.Error("bound tier must stay degraded even with a warm exact cache")
	}
	if b.Total != ref.Total || b.FullScanTotal != ref.FullScanTotal {
		t.Errorf("warm-cache bound totals %d/%d != cold %d/%d",
			b.Total, b.FullScanTotal, ref.Total, ref.FullScanTotal)
	}
	// Second evaluation serves the bound memo.
	if _, err := warm.EvaluateBoundContext(context.Background(), arch); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("testcost.bound.hit").Value() == 0 {
		t.Error("bound.hit counter never incremented")
	}
	if reg.Counter("testcost.bound.miss").Value() == 0 {
		t.Error("bound.miss counter never incremented")
	}
}

// TestBoundTierAreaDelayExact: area/critical-path come from the netlist
// in both tiers and must agree.
func TestBoundTierAreaDelayExact(t *testing.T) {
	cheap := NewAnnotator(16, 7)
	full := NewAnnotator(16, 7)
	arch := boundTestArch()
	for ci := range arch.Components {
		c := &arch.Components[ci]
		ba, bd, err := cheap.AreaDelayBoundContext(context.Background(), c)
		if err != nil {
			t.Fatal(err)
		}
		ea, ed, err := full.AreaDelayContext(context.Background(), c)
		if err != nil {
			t.Fatal(err)
		}
		if ba != ea || bd != ed {
			t.Errorf("%s: bound tier area/delay %v/%v != exact %v/%v", c.Name, ba, bd, ea, ed)
		}
	}
}

// TestBoundTierConcurrent: concurrent cheap-tier evaluations against one
// annotator race only on the memo map; results must agree.
func TestBoundTierConcurrent(t *testing.T) {
	ann := NewAnnotator(16, 7)
	arch := boundTestArch()
	ref, err := ann.EvaluateBoundContext(context.Background(), arch)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := ann.EvaluateBoundContext(context.Background(), boundTestArch())
			if err != nil {
				t.Error(err)
				return
			}
			if got.Total != ref.Total {
				t.Errorf("concurrent bound total %d != %d", got.Total, ref.Total)
			}
		}()
	}
	wg.Wait()
}
