// Package testcost implements the paper's analytical test cost model
// (section 3): per-component functional test costs f_tfu (eq. 11) and
// f_trf (eq. 12), the scan-based socket cost f_ts (eq. 13), and the
// architecture total (eq. 14). Pattern counts n_p are back-annotated from
// the gate-level component library — ATPG stuck-at patterns for function
// units (internal/atpg) and march tests for the multi-port register files
// (internal/march) — exactly mirroring the paper's flow, where components
// are pre-designed to gate level and their pattern counts fed back into
// the exploration.
package testcost

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/atpg"
	"repro/internal/faultinject"
	"repro/internal/gatelib"
	"repro/internal/march"
	"repro/internal/obs"
	"repro/internal/scan"
	"repro/internal/tta"
)

// SocketIDBits is the move-destination ID field width used for the socket
// decode logic of every generated socket.
const SocketIDBits = 6

// ComponentCost is one row of the paper's Table 1.
type ComponentCost struct {
	Name string
	Kind tta.Kind

	NP    int // stuck-at ATPG patterns (FUs) or march patterns (RFs)
	CD    int // cycles per functionally applied pattern (eqs. 9-10)
	NConn int
	NL    int // scan-chain length: component + socket flip-flops

	FTfu int // eq. (11), function units only
	FTrf int // eq. (12), register files only
	FTs  int // eq. (13), socket scan cost

	FullScanCycles int // baseline: all patterns through the scan chain
	FaultCoverage  float64

	// Excluded marks components that appear once in every architecture
	// (LD/ST, PC, Immediate) and therefore drop out of the comparison, as
	// in the paper.
	Excluded bool

	// Degraded marks a pattern count that is an analytical upper bound
	// (atpg.EstimateBound) rather than a converged ATPG measurement: the
	// component's budgeted ATPG run exhausted its wall-clock deadline
	// (Annotator.ATPGDeadline). Degraded costs are pessimistic, never
	// flattered — see DESIGN.md, "Degradation semantics".
	Degraded bool
}

// OurCycles is the component's total functional-approach test time:
// component patterns at CD cycles each plus the socket scan (the paper's
// "our approach" column, e.g. ALU 65 + 812 = 877).
func (c *ComponentCost) OurCycles() int {
	return c.FTfu + c.FTrf + c.FTs
}

// ArchCost aggregates the test cost of one architecture.
type ArchCost struct {
	Arch       *tta.Architecture
	Components []ComponentCost
	// Total is equation (14): sum of f_tfu, f_trf and f_ts over the
	// architecture-dependent datapath components.
	Total int
	// FullScanTotal is the corresponding full-scan baseline over the same
	// components.
	FullScanTotal int
	// Degraded reports that at least one cost-bearing (non-excluded)
	// component's pattern count is an analytical bound, not a converged
	// measurement — Total is then an upper bound on the true test cost.
	Degraded bool
}

// annotation caches the architecture-independent properties of a library
// component configuration.
type annotation struct {
	np       int
	nl       int // component flip-flops (without sockets)
	coverage float64
	scanNP   int // patterns used by the full-scan baseline
	area     float64
	delay    float64
	// degraded marks np/scanNP/coverage as analytical bounds (the
	// budgeted ATPG run did not converge); area and delay are always
	// measured from the netlist and stay exact.
	degraded bool
}

// Annotator back-annotates pattern counts from the gate-level library and
// evaluates the cost model for candidate architectures. It is safe for
// concurrent use: annotation-cache misses run their gate-level ATPG
// outside the annotator's lock, single-flight per key — distinct
// components annotate concurrently, while duplicate requests for a key
// already being annotated block only on that key's in-flight run.
type Annotator struct {
	Lib   *gatelib.Library
	Width int
	Seed  int64
	March march.Test

	// ATPGWorkers bounds the parallelism inside each gate-level ATPG run
	// behind a cache miss (atpg.Config.Workers): 0 = GOMAXPROCS,
	// 1 = serial. When the annotator is shared by several DSE evaluation
	// workers, set this to the per-evaluation share of the core budget so
	// the two levels do not oversubscribe (dse.Config does this
	// automatically). Results are identical at any setting.
	ATPGWorkers int

	// LaneWidth selects the fault-simulation pattern-block width of the
	// gate-level ATPG runs (atpg.Config.LaneWidth): 0 = auto by netlist
	// size, or 64, 256, 512. Results are identical at any setting; wider
	// blocks only change annotation wall time.
	LaneWidth int

	// ATPGDeadline bounds the wall-clock time of each gate-level ATPG
	// run behind a cache miss (0 = unbounded). A run that exhausts the
	// budget degrades gracefully instead of failing: the component's
	// pattern count falls back to the analytical SCOAP-derived upper
	// bound (atpg.EstimateBound) and the annotation is marked degraded,
	// which propagates through ComponentCost/ArchCost into the DSE
	// candidate. Degraded annotations are never persisted to the
	// warm-start cache, so a later unbudgeted run re-measures them.
	ATPGDeadline time.Duration

	// Inject, when non-nil, enables this annotator's chaos points —
	// faultinject.CacheRead/CacheWrite around the warm-start cache IO —
	// and is forwarded to the gate-level ATPG runs (atpg.Config.Inject).
	Inject *faultinject.Injector

	// Obs, when non-nil, receives annotation-cache counters —
	// "testcost.cache.hit" (served from the completed cache),
	// "testcost.cache.miss" (ran ATPG; exactly one per distinct key),
	// "testcost.cache.inflight" (coalesced onto another goroutine's
	// in-flight run) and "testcost.cache.wait_ns" (nanoseconds spent
	// waiting on in-flight runs) — and is forwarded to the ATPG runs
	// behind cache misses. Set it before sharing the annotator across
	// goroutines.
	Obs *obs.Registry

	mu       sync.Mutex
	cache    map[string]annotation
	bounds   map[string]annotation // cheap-tier analytical bounds, keyed like cache
	inflight map[string]*inflightRun

	sockIn   annotation
	sockOut  annotation
	sockNP   int
	sockDone bool
	sockWarm bool // socket annotations were loaded from a warm-start cache
	once     sync.Once
	sockErr  error
}

// inflightRun is the latch duplicate requests for one key wait on while
// the first requester runs the ATPG.
type inflightRun struct {
	done chan struct{} // closed once an/err are set
	an   annotation
	err  error
}

// NewAnnotator builds an annotator over a fresh component library.
func NewAnnotator(width int, seed int64) *Annotator {
	return &Annotator{
		Lib:      gatelib.NewLibrary(),
		Width:    width,
		Seed:     seed,
		March:    march.MarchCMinus,
		cache:    make(map[string]annotation),
		bounds:   make(map[string]annotation),
		inflight: make(map[string]*inflightRun),
	}
}

func (a *Annotator) annotate(ctx context.Context, key string, gen func() (*gatelib.Component, error)) (annotation, error) {
	for {
		a.mu.Lock()
		if an, ok := a.cache[key]; ok {
			a.mu.Unlock()
			a.Obs.Counter("testcost.cache.hit").Inc()
			return an, nil
		}
		run, ok := a.inflight[key]
		if !ok {
			// This request leads: register the latch, then run the ATPG
			// outside the lock so other keys proceed concurrently.
			run = &inflightRun{done: make(chan struct{})}
			a.inflight[key] = run
			a.mu.Unlock()
			a.Obs.Counter("testcost.cache.miss").Inc()
			return a.lead(ctx, key, run, gen)
		}
		a.mu.Unlock()
		// Duplicate request: latch onto the in-flight run for this key.
		a.Obs.Counter("testcost.cache.inflight").Inc()
		wait := time.Now()
		select {
		case <-run.done:
			a.Obs.Counter("testcost.cache.wait_ns").Add(time.Since(wait).Nanoseconds())
			if run.err == nil {
				return run.an, nil
			}
			// The run this request latched onto failed — possibly with the
			// leader's context error. Retry: the failed entry is gone, so
			// this request either leads the retry or observes a fresh one.
			if ctx.Err() != nil {
				return annotation{}, ctx.Err()
			}
		case <-ctx.Done():
			a.Obs.Counter("testcost.cache.wait_ns").Add(time.Since(wait).Nanoseconds())
			return annotation{}, ctx.Err()
		}
	}
}

// lead runs the in-flight annotation as the single-flight leader and
// settles the latch on every exit path: success, error, or panic. A
// panicking annotation (a crashing library generator, or an injected
// chaos panic) must not strand the waiters — they receive the failure
// through the latch while the panic itself propagates to the leader's
// caller, where the DSE worker's recover isolates it to one candidate.
func (a *Annotator) lead(ctx context.Context, key string, run *inflightRun, gen func() (*gatelib.Component, error)) (an annotation, err error) {
	settled := false
	settle := func() {
		a.mu.Lock()
		if run.err == nil {
			a.cache[key] = run.an
		}
		delete(a.inflight, key)
		a.mu.Unlock()
		close(run.done)
		settled = true
	}
	defer func() {
		if r := recover(); r != nil {
			if !settled {
				run.err = fmt.Errorf("testcost: annotating %s panicked: %v", key, r)
				settle()
			}
			panic(r)
		}
	}()
	run.an, run.err = a.runAnnotation(ctx, gen)
	settle()
	return run.an, run.err
}

// runAnnotation generates the component and runs the gate-level ATPG — the
// expensive part of a cache miss, executed without holding the lock. When
// the budgeted run exhausts Annotator.ATPGDeadline, the measured pattern
// count is replaced by the analytical SCOAP bound and the annotation
// marked degraded: deterministic (a pure function of the netlist, however
// far the partial run got) and pessimistic (an upper bound, so degraded
// candidates are never flattered).
func (a *Annotator) runAnnotation(ctx context.Context, gen func() (*gatelib.Component, error)) (annotation, error) {
	comp, err := gen()
	if err != nil {
		return annotation{}, err
	}
	res, err := atpg.RunContext(ctx, comp.Seq, atpg.Config{
		Seed:      a.Seed,
		Workers:   a.ATPGWorkers,
		LaneWidth: a.LaneWidth,
		Deadline:  a.ATPGDeadline,
		Obs:       a.Obs,
		Inject:    a.Inject,
	})
	if err != nil {
		return annotation{}, err
	}
	if res.DeadlineExceeded {
		b := atpg.EstimateBound(comp.Seq)
		a.Obs.Counter("testcost.degraded").Inc()
		a.Obs.Emit(obs.Event{
			Kind: "degraded",
			Msg: fmt.Sprintf("%s: ATPG deadline %v exhausted; using analytical bound np<=%d (measured %d patterns before expiry)",
				comp.Seq.Name, a.ATPGDeadline, b.Patterns, res.NumPatterns()),
		})
		return annotation{
			np:       b.Patterns,
			nl:       comp.SeqFFs(),
			coverage: b.Coverage(),
			scanNP:   b.Patterns,
			area:     comp.Seq.Area(),
			delay:    comp.Seq.CriticalPath(),
			degraded: true,
		}, nil
	}
	return annotation{
		np:       res.NumPatterns(),
		nl:       comp.SeqFFs(),
		coverage: res.Coverage(),
		scanNP:   res.NumPatterns(),
		area:     comp.Seq.Area(),
		delay:    comp.Seq.CriticalPath(),
	}, nil
}

// sockets lazily annotates the socket library elements (skipping the ATPG
// when a warm-start cache supplied them).
func (a *Annotator) sockets() error {
	a.once.Do(func() {
		if a.sockWarm {
			a.sockDone = true
			return
		}
		in, err := a.Lib.InputSocket(SocketIDBits)
		if err != nil {
			a.sockErr = err
			return
		}
		out, err := a.Lib.OutputSocket(SocketIDBits)
		if err != nil {
			a.sockErr = err
			return
		}
		// Sockets are small enough to always converge quickly, so they run
		// unbudgeted and under a background context — sync.Once makes a
		// first-caller cancellation sticky for every later evaluation, so
		// the socket ATPG must not be tied to one caller's ctx. With a
		// background context and no deadline the error is always nil.
		resIn, _ := atpg.RunContext(context.Background(), in.Seq, atpg.Config{Seed: a.Seed, Workers: a.ATPGWorkers, LaneWidth: a.LaneWidth, Obs: a.Obs})
		resOut, _ := atpg.RunContext(context.Background(), out.Seq, atpg.Config{Seed: a.Seed, Workers: a.ATPGWorkers, LaneWidth: a.LaneWidth, Obs: a.Obs})
		a.sockIn = annotation{np: resIn.NumPatterns(), nl: in.SeqFFs(), coverage: resIn.Coverage()}
		a.sockOut = annotation{np: resOut.NumPatterns(), nl: out.SeqFFs(), coverage: resOut.Coverage()}
		a.sockNP = resIn.NumPatterns()
		if resOut.NumPatterns() > a.sockNP {
			a.sockNP = resOut.NumPatterns()
		}
		a.sockDone = true
	})
	return a.sockErr
}

// socketFFs returns the flip-flop count of the sockets attached to a
// component (one input socket per input port, one output socket per
// output port).
func (a *Annotator) socketFFs(c *tta.Component) int {
	return len(c.InputPorts())*a.sockIn.nl + len(c.OutputPorts())*a.sockOut.nl
}

func ceilDiv(x, y int) int {
	if y <= 0 {
		return x
	}
	return (x + y - 1) / y
}

// componentKeyGen maps an architecture component to its library cache
// key and netlist generator — the single source of truth shared by the
// exact annotation path and the bound tier, so both tiers always agree
// on which library element a component resolves to.
func (a *Annotator) componentKeyGen(c *tta.Component) (string, func() (*gatelib.Component, error), error) {
	switch c.Kind {
	case tta.ALU:
		return fmt.Sprintf("alu/%d/%s", a.Width, c.Adder), func() (*gatelib.Component, error) {
			return a.Lib.ALU(gatelib.ALUConfig{Width: a.Width, Adder: c.Adder})
		}, nil
	case tta.CMP:
		return fmt.Sprintf("cmp/%d", a.Width), func() (*gatelib.Component, error) {
			return a.Lib.CMP(a.Width)
		}, nil
	case tta.RF:
		cfg := gatelib.RFConfig{Width: a.Width, NumRegs: c.NumRegs, NumIn: c.NumIn, NumOut: c.NumOut}
		return "rf/" + cfg.String(), func() (*gatelib.Component, error) {
			return a.Lib.RF(cfg)
		}, nil
	case tta.LDST:
		return fmt.Sprintf("ldst/%d", a.Width), func() (*gatelib.Component, error) {
			return a.Lib.LDST(a.Width)
		}, nil
	case tta.PC:
		return fmt.Sprintf("pc/%d", a.Width), func() (*gatelib.Component, error) {
			return a.Lib.PC(a.Width)
		}, nil
	case tta.IMM:
		return fmt.Sprintf("imm/%d", a.Width), func() (*gatelib.Component, error) {
			return a.Lib.IMM(a.Width)
		}, nil
	default:
		return "", nil, fmt.Errorf("testcost: unknown component kind %v", c.Kind)
	}
}

// marchOverride applies the register-file pattern-count convention: the
// functional RF test uses march patterns, not the scan-view ATPG set
// (which only feeds the full-scan baseline).
func (a *Annotator) marchOverride(c *tta.Component, an annotation) annotation {
	if c.Kind == tta.RF {
		an.np = march.MultiPortPatternCount(a.March, c.NumRegs, c.NumIn, c.NumOut)
	}
	return an
}

// componentAnnotation fetches the library annotation for an architecture
// component.
func (a *Annotator) componentAnnotation(ctx context.Context, c *tta.Component) (annotation, error) {
	key, gen, err := a.componentKeyGen(c)
	if err != nil {
		return annotation{}, err
	}
	an, err := a.annotate(ctx, key, gen)
	if err != nil {
		return annotation{}, err
	}
	return a.marchOverride(c, an), nil
}

// Evaluate computes the full Table-1-style cost breakdown and the eq. (14)
// total for an architecture. Ports must be assigned to buses.
//
// Deprecated: Evaluate is a thin shim over EvaluateContext with a
// background context; the gate-level ATPG behind a cache miss then
// cannot be cancelled. Use EvaluateContext.
func (a *Annotator) Evaluate(arch *tta.Architecture) (*ArchCost, error) {
	return a.EvaluateContext(context.Background(), arch)
}

// EvaluateContext is Evaluate with cancellation: the gate-level ATPG runs
// behind annotation-cache misses poll ctx and abort when it is done.
func (a *Annotator) EvaluateContext(ctx context.Context, arch *tta.Architecture) (*ArchCost, error) {
	return a.evaluateWith(ctx, arch, a.componentAnnotation)
}

// evaluateWith runs the eq. (14) cost assembly over an architecture with
// a pluggable per-component annotation source (exact or bound tier).
func (a *Annotator) evaluateWith(ctx context.Context, arch *tta.Architecture, fetch func(context.Context, *tta.Component) (annotation, error)) (*ArchCost, error) {
	if err := arch.Validate(); err != nil {
		return nil, err
	}
	if !arch.Assigned() {
		return nil, fmt.Errorf("testcost: architecture %q has unassigned ports", arch.Name)
	}
	if err := a.sockets(); err != nil {
		return nil, err
	}
	out := &ArchCost{Arch: arch}
	for ci := range arch.Components {
		c := &arch.Components[ci]
		an, err := fetch(ctx, c)
		if err != nil {
			return nil, err
		}
		cc := ComponentCost{
			Name:          c.Name,
			Kind:          c.Kind,
			NP:            an.np,
			CD:            c.CD(),
			NConn:         c.NumConnectors(),
			NL:            an.nl + a.socketFFs(c),
			FaultCoverage: an.coverage,
			Degraded:      an.degraded,
		}
		cc.FullScanCycles = scan.TestCycles(an.scanNP, cc.NL)
		switch c.Kind {
		case tta.ALU, tta.CMP:
			// Equation (11): n_p * CD * ceil(n_conn / n_b).
			cc.FTfu = an.np * cc.CD * ceilDiv(cc.NConn, arch.Buses)
			cc.FTs = a.sockNP * cc.NL
		case tta.RF:
			cc.FTrf = rfCost(an.np, cc.CD, c.NumIn, c.NumOut, arch.Buses)
			cc.FTs = a.sockNP * cc.NL
		default:
			// LD/ST, PC and Immediate appear once in every candidate and
			// cancel out of the comparison (paper, section 4).
			cc.Excluded = true
		}
		out.Components = append(out.Components, cc)
		if !cc.Excluded {
			out.Total += cc.OurCycles()
			out.FullScanTotal += cc.FullScanCycles
			if cc.Degraded {
				out.Degraded = true
			}
		}
	}
	return out, nil
}

// rfCost is equation (12): march patterns stream through parallel ports
// when the buses can feed them (parallelism min(n_in, n_out)); once both
// port counts exceed the bus count the transports serialize and the cost
// grows with max(n_in, n_out)/n_b.
func rfCost(np, cd, nIn, nOut, buses int) int {
	if nIn <= buses && nOut <= buses {
		p := nIn
		if nOut < p {
			p = nOut
		}
		if p < 1 {
			p = 1
		}
		return ceilDiv(np, p) * cd
	}
	m := nIn
	if nOut > m {
		m = nOut
	}
	return ceilDiv(np*m, buses) * cd
}

// AreaDelay exposes the library's area and critical-path annotation for a
// component (used by the DSE's area/throughput axes).
//
// Deprecated: AreaDelay is a thin shim over AreaDelayContext with a
// background context. Use AreaDelayContext.
func (a *Annotator) AreaDelay(c *tta.Component) (area, delay float64, err error) {
	return a.AreaDelayContext(context.Background(), c)
}

// AreaDelayContext is AreaDelay with cancellation (see EvaluateContext).
func (a *Annotator) AreaDelayContext(ctx context.Context, c *tta.Component) (area, delay float64, err error) {
	an, err := a.componentAnnotation(ctx, c)
	if err != nil {
		return 0, 0, err
	}
	return an.area, an.delay, nil
}

// SocketArea returns the cell area of one input plus one output socket —
// multiplied by the port counts it models the interconnect/control
// overhead growing with sockets and buses.
func (a *Annotator) SocketArea() (in, out float64, err error) {
	if err := a.sockets(); err != nil {
		return 0, 0, err
	}
	ic, err := a.Lib.InputSocket(SocketIDBits)
	if err != nil {
		return 0, 0, err
	}
	oc, err := a.Lib.OutputSocket(SocketIDBits)
	if err != nil {
		return 0, 0, err
	}
	return ic.Seq.Area(), oc.Seq.Area(), nil
}
