package testcost

import (
	"context"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/tta"
)

// TestAnnotatorSingleFlight hammers one annotator from many goroutines
// with overlapping keys (run under -race via the tier-1 recipe) and
// asserts the single-flight contract: exactly one ATPG run per distinct
// key — the miss counter equals the distinct-key count no matter how many
// requests collide — with every other request either a cache hit or a
// coalesced in-flight wait.
func TestAnnotatorSingleFlight(t *testing.T) {
	a := NewAnnotator(4, 7) // narrow width keeps the per-key ATPG cheap
	reg := obs.NewRegistry()
	a.Obs = reg

	comps := []tta.Component{
		tta.NewFU(tta.ALU, "ALU"),
		tta.NewFU(tta.CMP, "CMP"),
		tta.NewRF("RF1", 8, 1, 1),
		tta.NewRF("RF2", 4, 1, 2),
		tta.NewFU(tta.LDST, "LD/ST"),
		tta.NewPC("PC"),
		tta.NewIMM("Immediate"),
	}
	distinct := len(comps) // every component maps to its own cache key

	const goroutines = 16
	const rounds = 3
	ctx := context.Background()
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for r := 0; r < rounds; r++ {
				for k := range comps {
					// Rotate the visiting order per goroutine so every key
					// sees concurrent first requests.
					c := &comps[(k+g)%len(comps)]
					an, err := a.componentAnnotation(ctx, c)
					if err != nil {
						t.Errorf("goroutine %d: %s: %v", g, c.Name, err)
						return
					}
					if an.np <= 0 || an.nl <= 0 {
						t.Errorf("goroutine %d: %s: empty annotation %+v", g, c.Name, an)
						return
					}
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()

	miss := reg.Counter("testcost.cache.miss").Value()
	hit := reg.Counter("testcost.cache.hit").Value()
	inflight := reg.Counter("testcost.cache.inflight").Value()
	if miss != int64(distinct) {
		t.Errorf("miss counter = %d, want exactly %d (one ATPG run per distinct key)", miss, distinct)
	}
	total := int64(goroutines * rounds * len(comps))
	if hit+inflight+miss != total {
		t.Errorf("hit(%d) + inflight(%d) + miss(%d) = %d, want every request accounted for (%d)",
			hit, inflight, miss, hit+inflight+miss, total)
	}
	if inflight > 0 && reg.Counter("testcost.cache.wait_ns").Value() <= 0 {
		t.Errorf("inflight waits recorded (%d) but wait_ns is zero", inflight)
	}
}

// TestAnnotatorSingleFlightDeterministic repeats an evaluation through
// the concurrent path and checks the cached annotations produce the same
// totals as a fresh serial annotator — single-flight must not change any
// value, only when it is computed.
func TestAnnotatorSingleFlightDeterministic(t *testing.T) {
	arch := tta.Figure9()
	fresh := NewAnnotator(16, 7)

	var wg sync.WaitGroup
	results := make([]int, 8)
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cost, err := fresh.Evaluate(arch)
			if err != nil {
				t.Errorf("goroutine %d: %v", g, err)
				return
			}
			results[g] = cost.Total
		}(g)
	}
	wg.Wait()

	want, err := sharedAnn.Evaluate(arch)
	if err != nil {
		t.Fatal(err)
	}
	for g, got := range results {
		if got != want.Total {
			t.Errorf("goroutine %d: total %d, serial reference %d", g, got, want.Total)
		}
	}
}
