package testcost

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/tta"
)

// TestATPGDeadlineDegradesAnnotations runs an annotator with an
// impossible ATPG budget: every component annotation must fall back to
// the analytical bound, flagged degraded all the way up to ArchCost, and
// the bound must dominate what a converged annotator measures.
func TestATPGDeadlineDegradesAnnotations(t *testing.T) {
	reg := obs.NewRegistry()
	var events []obs.Event
	reg.Subscribe(func(ev obs.Event) { events = append(events, ev) })

	deg := NewAnnotator(16, 7)
	deg.ATPGDeadline = time.Nanosecond
	deg.Obs = reg
	arch := tta.Figure9()
	cost, err := deg.Evaluate(arch)
	if err != nil {
		t.Fatal(err)
	}
	if !cost.Degraded {
		t.Fatal("ArchCost.Degraded not set under an exhausted budget")
	}
	nDeg := 0
	for _, c := range cost.Components {
		if c.Degraded {
			nDeg++
			if c.NP <= 0 {
				t.Errorf("%s: degraded np = %d, want a positive analytical bound", c.Name, c.NP)
			}
		}
	}
	if nDeg == 0 {
		t.Fatal("no component marked degraded")
	}
	if got := reg.Counter("testcost.degraded").Value(); got != int64(nDeg) {
		// Degradations are counted per distinct annotation (cache key),
		// and component rows can share keys — the counter must be at
		// least 1 and at most the row count.
		if got < 1 || got > int64(nDeg) {
			t.Fatalf("testcost.degraded = %d, want in [1, %d]", got, nDeg)
		}
	}
	found := false
	for _, ev := range events {
		if ev.Kind == "degraded" && strings.Contains(ev.Msg, "analytical bound") {
			found = true
		}
	}
	if !found {
		t.Fatal("no degradation event emitted")
	}

	// Pessimism: the degraded total must never undercut the measured one.
	ref, err := sharedAnn.Evaluate(arch)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Total < ref.Total {
		t.Fatalf("degraded total %d < measured total %d (the bound flattered a candidate)", cost.Total, ref.Total)
	}
}

// TestDegradedEntriesNotPersisted checks Save excludes degraded
// annotations: a warm start from that file must re-measure them.
func TestDegradedEntriesNotPersisted(t *testing.T) {
	deg := NewAnnotator(16, 7)
	deg.ATPGDeadline = time.Nanosecond
	if _, err := deg.Evaluate(tta.Figure9()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := deg.Save(&buf); err != nil {
		t.Fatal(err)
	}
	deg.mu.Lock()
	degradedKeys := 0
	for _, an := range deg.cache {
		if an.degraded {
			degradedKeys++
		}
	}
	deg.mu.Unlock()
	if degradedKeys == 0 {
		t.Fatal("test expected degraded cache entries")
	}
	cold := NewAnnotator(16, 7)
	if err := cold.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	cold.mu.Lock()
	for k, an := range cold.cache {
		if an.degraded {
			t.Errorf("degraded entry %q survived a Save/Load round trip", k)
		}
		_ = an
		_ = k
	}
	n := len(cold.cache)
	cold.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d component entries persisted from a fully degraded annotator, want 0", n)
	}
}

// TestNoDeadlineMeansNoDegradation pins the compatibility contract: an
// unbudgeted annotator never marks anything degraded.
func TestNoDeadlineMeansNoDegradation(t *testing.T) {
	cost := evalFigure9(t)
	if cost.Degraded {
		t.Fatal("unbudgeted evaluation marked degraded")
	}
	for _, c := range cost.Components {
		if c.Degraded {
			t.Fatalf("%s degraded without a budget", c.Name)
		}
	}
}
