package testcost

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/tta"
)

// tta4ALU is the component whose annotation seeds the fuzz ancestor.
var tta4ALU = tta.NewFU(tta.ALU, "ALU1")

// FuzzAnnotatorLoad feeds arbitrary bytes — plus a checked-in corpus of
// truncated, bit-flipped and header-mutated cache files (see
// testdata/fuzz/FuzzAnnotatorLoad) — through Annotator.Load. The
// contract: never panic, never corrupt the annotator, and classify every
// rejection as exactly *CacheMismatchError (structurally valid but
// stale/foreign) or *CacheCorruptError (undecodable or invalid).
func FuzzAnnotatorLoad(f *testing.F) {
	// A genuine cache file as mutation ancestor: the annotator is tiny
	// (width 4 keeps the seed ATPG fast) but the JSON shape is the real
	// one.
	seedAnn := NewAnnotator(4, 7)
	if _, _, err := seedAnn.AreaDelay(&tta4ALU); err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := seedAnn.Save(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()/2]) // truncation
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":99,"entries":{}}`))
	f.Add([]byte(`{"version":1,"library":"x","width":4,"seed":7,"march":"y","entries":{"alu/4/ripple":{"np":-1}}}`))
	f.Add([]byte(`{"version":1,"entries":{"k":{"coverage":1e999}}}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`"json string"`))

	f.Fuzz(func(t *testing.T, data []byte) {
		a := NewAnnotator(4, 7)
		err := a.Load(bytes.NewReader(data))
		if err == nil {
			return // a structurally valid, matching cache — fine
		}
		var mismatch *CacheMismatchError
		var corrupt *CacheCorruptError
		if !errors.As(err, &mismatch) && !errors.As(err, &corrupt) {
			t.Fatalf("Load returned an untyped error %T: %v", err, err)
		}
		// A rejected load must leave the annotator cold.
		a.mu.Lock()
		n := len(a.cache)
		a.mu.Unlock()
		if n != 0 {
			t.Fatalf("rejected load left %d entries in the cache", n)
		}
	})
}
