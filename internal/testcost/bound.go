package testcost

import (
	"context"
	"fmt"

	"repro/internal/atpg"
	"repro/internal/tta"
)

// This file is the annotator's cheap fidelity tier. Guided search
// (dse.SearchSpec) screens thousands of candidates per generation; paying
// a gate-level ATPG run per distinct component at that volume would make
// the screen as expensive as the final evaluation. The bound tier
// replaces the measured pattern count with the analytical SCOAP bound
// (atpg.EstimateBound): a pure function of the netlist — deterministic,
// no search, no deadline — that is an upper bound on the converged n_p,
// so screening never flatters a candidate. Area and critical path are
// read off the same generated netlist and are exact, identical to the
// full tier.
//
// Bound annotations live in their own map (Annotator.bounds), strictly
// separated from the main cache in both directions. Outward: the main
// cache feeds the warm-start persistence layer and must only ever hold
// converged measurements (cachefile.go already refuses degraded entries;
// separate maps remove the interaction entirely). Inward: the cheap tier
// never reads the exact cache either, even when a measurement is already
// sitting there — a bound annotation must be a pure function of the
// netlist, or the guided search's screening trajectory (and with it the
// whole survivor list) would depend on how warm a shared annotator
// happens to be: a daemon-pooled annotator, a warm-start cache file or a
// checkpoint resume would all steer the same seed to different
// candidates.

// componentBound fetches the cheap-tier annotation for a component: the
// memoized SCOAP bound, generating the netlist on first use.
func (a *Annotator) componentBound(ctx context.Context, c *tta.Component) (annotation, error) {
	if err := ctx.Err(); err != nil {
		return annotation{}, err
	}
	key, gen, err := a.componentKeyGen(c)
	if err != nil {
		return annotation{}, err
	}
	a.mu.Lock()
	if an, ok := a.bounds[key]; ok {
		a.mu.Unlock()
		a.Obs.Counter("testcost.bound.hit").Inc()
		return a.marchOverride(c, an), nil
	}
	a.mu.Unlock()
	a.Obs.Counter("testcost.bound.miss").Inc()
	comp, err := gen()
	if err != nil {
		return annotation{}, fmt.Errorf("testcost: bound tier generating %s: %w", key, err)
	}
	b := atpg.EstimateBound(comp.Seq)
	an := annotation{
		np:       b.Patterns,
		nl:       comp.SeqFFs(),
		coverage: b.Coverage(),
		scanNP:   b.Patterns,
		area:     comp.Seq.Area(),
		delay:    comp.Seq.CriticalPath(),
		degraded: true,
	}
	a.mu.Lock()
	if a.bounds == nil {
		a.bounds = make(map[string]annotation)
	}
	// Concurrent misses for one key compute the identical pure bound;
	// last-writer-wins is deterministic.
	a.bounds[key] = an
	a.mu.Unlock()
	return a.marchOverride(c, an), nil
}

// EvaluateBoundContext is the cheap-tier counterpart of EvaluateContext:
// the same eq. (14) cost assembly, but component pattern counts come
// from componentBound instead of converged ATPG measurements. The
// returned ArchCost is always marked Degraded; its Total is an upper
// bound on (never below) the EvaluateContext total for the same
// architecture, and a pure function of it — independent of what the
// exact cache holds. Socket annotation still runs the one-time real
// socket ATPG — sockets are tiny, shared by every candidate, and their
// measured n_p anchors the f_ts term for both tiers.
func (a *Annotator) EvaluateBoundContext(ctx context.Context, arch *tta.Architecture) (*ArchCost, error) {
	return a.evaluateWith(ctx, arch, a.componentBound)
}

// AreaDelayBoundContext returns the component's exact area and critical
// path from the cheap tier: the values are measured from the generated
// netlist either way, so this matches AreaDelayContext without ever
// paying for an ATPG run.
func (a *Annotator) AreaDelayBoundContext(ctx context.Context, c *tta.Component) (area, delay float64, err error) {
	an, err := a.componentBound(ctx, c)
	if err != nil {
		return 0, 0, err
	}
	return an.area, an.delay, nil
}
