package testcost

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/durable"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// TestCacheTornPrefixRecovery tears the tail off a saved cache: the load
// must keep the valid record prefix (warm entries), count the recovery,
// and not error — a shorter cache is just a slightly colder start.
func TestCacheTornPrefixRecovery(t *testing.T) {
	_, blob := coldAnnotator(t)
	a := NewAnnotator(8, 7)
	reg := obs.NewRegistry()
	a.Obs = reg
	if err := a.Load(bytes.NewReader(blob[:len(blob)-5])); err != nil {
		t.Fatalf("torn load: %v", err)
	}
	if got := reg.Counter("durability.prefix_recovered").Value(); got != 1 {
		t.Fatalf("durability.prefix_recovered = %d, want 1", got)
	}
	if reg.Counter("testcost.cache.loaded").Value() == 0 {
		t.Fatal("torn load warmed nothing — prefix was discarded")
	}
	a.mu.Lock()
	warm := len(a.cache)
	a.mu.Unlock()
	full, _ := coldAnnotator(t)
	full.mu.Lock()
	want := len(full.cache)
	full.mu.Unlock()
	if warm >= want {
		t.Fatalf("torn load kept %d entries, full cache has %d — the tear lost nothing?", warm, want)
	}
}

// TestCacheLegacyFormatRoundTrip pins backward compatibility: a
// whole-document pre-CRC cache still warm-loads (with the one-time
// legacy obs event), and re-saving it produces the framed bytes a
// never-legacy save would have.
func TestCacheLegacyFormatRoundTrip(t *testing.T) {
	_, blob := coldAnnotator(t)
	f, rec, err := decodeCacheData(blob)
	if err != nil || rec.Torn || rec.Legacy {
		t.Fatalf("decode framed cache: %v (recovery %+v)", err, rec)
	}
	legacy, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}

	a := NewAnnotator(8, 7)
	reg := obs.NewRegistry()
	a.Obs = reg
	if err := a.Load(bytes.NewReader(append(legacy, '\n'))); err != nil {
		t.Fatalf("legacy load: %v", err)
	}
	if got := reg.Counter("durability.legacy_loads").Value(); got != 1 {
		t.Fatalf("durability.legacy_loads = %d, want 1", got)
	}
	if got, want := reg.Counter("testcost.cache.loaded").Value(), int64(len(f.Entries)); got != want {
		t.Fatalf("legacy load warmed %d entries, want %d", got, want)
	}

	var out bytes.Buffer
	if err := a.Save(&out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), blob) {
		t.Fatalf("re-saved legacy cache differs from the framed original:\n%q\nvs\n%q", out.Bytes(), blob)
	}
}

// TestCacheQuarantineOnLoadFile feeds LoadFile an irrecoverable file: it
// must quarantine to *.corrupt, count it, return the typed artifact
// error wrapping CacheCorruptError, and leave the annotator cold.
func TestCacheQuarantineOnLoadFile(t *testing.T) {
	p := filepath.Join(t.TempDir(), "ann.cache")
	if err := os.WriteFile(p, []byte("{definitely not a cache"), 0o644); err != nil {
		t.Fatal(err)
	}
	a := NewAnnotator(8, 7)
	reg := obs.NewRegistry()
	a.Obs = reg
	err := a.LoadFile(p)
	var ca *durable.CorruptArtifactError
	if !errors.As(err, &ca) {
		t.Fatalf("err = %T (%v), want *durable.CorruptArtifactError", err, err)
	}
	var cc *CacheCorruptError
	if !errors.As(err, &cc) {
		t.Fatal("artifact error does not wrap CacheCorruptError")
	}
	if ca.QuarantinedTo != p+".corrupt" {
		t.Fatalf("quarantined to %q", ca.QuarantinedTo)
	}
	if _, serr := os.Stat(p); !os.IsNotExist(serr) {
		t.Fatal("corrupt cache still at original path")
	}
	if reg.Counter("durability.quarantined").Value() != 1 {
		t.Fatalf("durability.quarantined = %d, want 1", reg.Counter("durability.quarantined").Value())
	}
	a.mu.Lock()
	n := len(a.cache)
	a.mu.Unlock()
	if n != 0 {
		t.Fatalf("corrupt load warmed %d entries", n)
	}
}

// TestCacheSaveFileAtomicOnError arms an injected write failure: the
// existing cache file must survive untouched.
func TestCacheSaveFileAtomicOnError(t *testing.T) {
	a, _ := coldAnnotator(t)
	p := filepath.Join(t.TempDir(), "ann.cache")
	if err := a.SaveFile(p); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(1)
	inj.Arm(faultinject.CacheWrite, faultinject.Plan{Mode: faultinject.ModeError, Limit: 1})
	a.Inject = inj
	if err := a.SaveFile(p); err == nil {
		t.Fatal("injected write failure not surfaced")
	}
	after, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed save disturbed the existing cache file")
	}
}
