package report

import (
	"bytes"
	"encoding/json"
)

// JSONCandidate is the machine-readable projection of one evaluated
// design point. It is deliberately flat and free of non-deterministic
// fields (no timestamps, no pointers, no job identity) so that two runs
// over the same space encode byte-identically — the service layer's
// drain/resume contract compares reports with bytes.Equal.
type JSONCandidate struct {
	Index    int     `json:"index"`
	Arch     string  `json:"arch"`
	Feasible bool    `json:"feasible"`
	Reason   string  `json:"reason,omitempty"`
	Area     float64 `json:"area,omitempty"`
	Cycles   int     `json:"cycles,omitempty"`
	Clock    float64 `json:"clock,omitempty"`
	ExecTime float64 `json:"exec_time,omitempty"`
	TestCost int     `json:"test_cost,omitempty"`
	FullScan int     `json:"full_scan,omitempty"`
	Spills   int     `json:"spills,omitempty"`
	Energy   float64 `json:"energy,omitempty"`
	Degraded bool    `json:"degraded,omitempty"`
}

// JSONSelection describes the figure-9 choice and the norm that made it.
type JSONSelection struct {
	Index           int     `json:"index"`
	Arch            string  `json:"arch"`
	Norm            string  `json:"norm,omitempty"`
	WA              float64 `json:"wa,omitempty"`
	WT              float64 `json:"wt,omitempty"`
	WC              float64 `json:"wc,omitempty"`
	DegradedPolicy  string  `json:"degraded_policy,omitempty"`
	DegradedPenalty float64 `json:"degraded_penalty,omitempty"`
}

// JSONResult is the exploration's full machine-readable report: every
// candidate in enumeration order, the feasible set and both Pareto
// fronts as indexes into it, and the selection. Like JSONCandidate it
// carries only deterministic run data, so a resumed exploration that
// covers the same space reproduces the report byte for byte.
type JSONResult struct {
	Workload   string          `json:"workload,omitempty"`
	Width      int             `json:"width"`
	Seed       int64           `json:"seed"`
	Candidates []JSONCandidate `json:"candidates"`
	Feasible   []int           `json:"feasible"`
	Front2D    []int           `json:"front2d"`
	Front3D    []int           `json:"front3d"`
	Selected   int             `json:"selected"`
	Verified   bool            `json:"verified,omitempty"`
	// Partial marks a report built from an interrupted exploration
	// (context cancelled or deadline hit); Missing counts the
	// candidates that were never evaluated.
	Partial bool `json:"partial,omitempty"`
	Missing int  `json:"missing,omitempty"`

	Selection *JSONSelection `json:"selection,omitempty"`
}

// Encode renders the result as stable, indented JSON with a trailing
// newline. Struct-driven encoding keeps field order fixed, so equal
// results encode to equal bytes.
func (r *JSONResult) Encode() ([]byte, error) {
	var b bytes.Buffer
	enc := json.NewEncoder(&b)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}
