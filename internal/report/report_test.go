package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("title", "name", "value")
	tb.AddRow("short", 1)
	tb.AddRow("a-much-longer-name", 123456)
	out := tb.String()
	if !strings.Contains(out, "title") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("%d lines, want 5 (title, header, sep, 2 rows)", len(lines))
	}
	// Columns align: the 'value' column starts at the same offset on all
	// data lines.
	idx := strings.Index(lines[1], "value")
	if idx < 0 {
		t.Fatal("no value header")
	}
	if lines[3][idx] == ' ' && lines[4][idx] == ' ' {
		t.Error("value column empty at the header offset on all rows")
	}
}

func TestTableFloatsTrimmed(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(3.0)
	tb.AddRow(3.14159)
	out := tb.String()
	if !strings.Contains(out, "\n3 ") && !strings.Contains(out, "\n3\n") {
		t.Errorf("integral float not trimmed: %q", out)
	}
	if !strings.Contains(out, "3.14") {
		t.Errorf("fractional float lost precision: %q", out)
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x,y", "plain")
	tb.AddRow(`has"quote`, 2)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"x,y"`) {
		t.Errorf("comma cell not quoted: %q", out)
	}
	if !strings.Contains(out, `"has""quote"`) {
		t.Errorf("quote cell not escaped: %q", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("missing header: %q", out)
	}
}

func TestScatterRendersPoints(t *testing.T) {
	sc := NewScatter("pareto", "area", "time", 40, 10)
	sc.Add(1, 10, 0)
	sc.Add(5, 5, 0)
	sc.Add(10, 1, 'S')
	out := sc.String()
	if strings.Count(out, "*") != 2 {
		t.Errorf("expected 2 star points, got %d in:\n%s", strings.Count(out, "*"), out)
	}
	if !strings.Contains(out, "S") {
		t.Errorf("special mark lost:\n%s", out)
	}
	if !strings.Contains(out, "area") || !strings.Contains(out, "time") {
		t.Error("axis labels missing")
	}
}

func TestScatterExtremesAtCorners(t *testing.T) {
	sc := NewScatter("", "x", "y", 30, 8)
	sc.Add(0, 0, 'L')   // bottom-left
	sc.Add(10, 10, 'H') // top-right
	out := sc.String()
	lines := strings.Split(out, "\n")
	// First plot row (top) must contain H at the right edge; last plot row
	// contains L at the left edge.
	var plot []string
	for _, l := range lines {
		if strings.HasPrefix(l, "| ") {
			plot = append(plot, l)
		}
	}
	if len(plot) != 8 {
		t.Fatalf("%d plot rows, want 8", len(plot))
	}
	if !strings.Contains(plot[0], "H") {
		t.Errorf("high point not on the top row: %q", plot[0])
	}
	if !strings.Contains(plot[len(plot)-1], "L") {
		t.Errorf("low point not on the bottom row: %q", plot[len(plot)-1])
	}
}

func TestScatterEmpty(t *testing.T) {
	sc := NewScatter("e", "x", "y", 20, 6)
	if !strings.Contains(sc.String(), "no points") {
		t.Error("empty scatter did not say so")
	}
}

func TestScatterDegenerateRange(t *testing.T) {
	sc := NewScatter("", "x", "y", 20, 6)
	sc.Add(5, 5, 0)
	sc.Add(5, 5, 0)
	out := sc.String() // must not panic or divide by zero
	if !strings.Contains(out, "*") {
		t.Error("coincident points lost")
	}
}
