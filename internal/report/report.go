// Package report renders the exploration results as aligned ASCII tables,
// CSV series and text scatter plots — the output format of the cmd tools
// and the benchmark harness that regenerates the paper's tables and
// figures.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// Write renders the table.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Write(&b)
	return b.String()
}

// WriteCSV emits the table as CSV (quoting cells containing separators).
func (t *Table) WriteCSV(w io.Writer) error {
	emit := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := emit(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := emit(row); err != nil {
			return err
		}
	}
	return nil
}

// Scatter renders a 2-D point cloud as a text plot. Marks associates a
// rune with each point; 0 uses '*'.
type Scatter struct {
	Title      string
	XLabel     string
	YLabel     string
	W, H       int
	xs, ys     []float64
	marks      []rune
	hasSpecial bool
}

// NewScatter creates a plot grid of the given size (columns x rows).
func NewScatter(title, xlabel, ylabel string, w, h int) *Scatter {
	if w < 10 {
		w = 10
	}
	if h < 5 {
		h = 5
	}
	return &Scatter{Title: title, XLabel: xlabel, YLabel: ylabel, W: w, H: h}
}

// Add places a point; mark 0 renders as '*'.
func (s *Scatter) Add(x, y float64, mark rune) {
	if mark == 0 {
		mark = '*'
	} else {
		s.hasSpecial = true
	}
	s.xs = append(s.xs, x)
	s.ys = append(s.ys, y)
	s.marks = append(s.marks, mark)
}

// String renders the plot.
func (s *Scatter) String() string {
	var b strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&b, "%s\n", s.Title)
	}
	if len(s.xs) == 0 {
		b.WriteString("(no points)\n")
		return b.String()
	}
	xmin, xmax := minMax(s.xs)
	ymin, ymax := minMax(s.ys)
	grid := make([][]rune, s.H)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", s.W))
	}
	for i := range s.xs {
		c := scale(s.xs[i], xmin, xmax, s.W-1)
		r := s.H - 1 - scale(s.ys[i], ymin, ymax, s.H-1)
		// Priority per cell: special marks > '*' > '.' > empty.
		if markPriority(s.marks[i]) >= markPriority(grid[r][c]) {
			grid[r][c] = s.marks[i]
		}
	}
	fmt.Fprintf(&b, "%s (vertical: %.3g .. %.3g)\n", s.YLabel, ymin, ymax)
	for _, row := range grid {
		fmt.Fprintf(&b, "| %s\n", string(row))
	}
	fmt.Fprintf(&b, "+-%s\n", strings.Repeat("-", s.W))
	fmt.Fprintf(&b, "  %s (horizontal: %.3g .. %.3g)\n", s.XLabel, xmin, xmax)
	return b.String()
}

func markPriority(m rune) int {
	switch m {
	case ' ':
		return 0
	case '.':
		return 1
	case '*':
		return 2
	default:
		return 3
	}
}

func minMax(v []float64) (float64, float64) {
	lo, hi := v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func scale(v, lo, hi float64, steps int) int {
	if hi <= lo {
		return 0
	}
	i := int(math.Round((v - lo) / (hi - lo) * float64(steps)))
	if i < 0 {
		i = 0
	}
	if i > steps {
		i = steps
	}
	return i
}
