package pareto

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func pts(coords ...[]float64) []Point {
	out := make([]Point, len(coords))
	for i, c := range coords {
		out[i] = Point{ID: i, Coords: c}
	}
	return out
}

func TestDominates(t *testing.T) {
	if !Dominates([]float64{1, 2}, []float64{2, 2}) {
		t.Error("strictly better in one dim, equal other: should dominate")
	}
	if Dominates([]float64{1, 2}, []float64{1, 2}) {
		t.Error("equal points must not dominate")
	}
	if Dominates([]float64{1, 3}, []float64{2, 2}) {
		t.Error("trade-off points must not dominate")
	}
	if Dominates([]float64{1}, []float64{1, 2}) {
		t.Error("mismatched dims must not dominate")
	}
}

func TestFrontSmall(t *testing.T) {
	p := pts(
		[]float64{1, 5}, // front
		[]float64{2, 4}, // front
		[]float64{3, 3}, // front
		[]float64{3, 5}, // dominated by {3,3}? no: equal in x... {3,3} dominates {3,5}
		[]float64{5, 5}, // dominated
	)
	f := Front(p)
	want := map[int]bool{0: true, 1: true, 2: true}
	if len(f) != 3 {
		t.Fatalf("front size %d, want 3 (%v)", len(f), f)
	}
	for _, i := range f {
		if !want[i] {
			t.Fatalf("unexpected front member %d", i)
		}
	}
}

func TestFrontPropertyMutualNonDomination(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var p []Point
		for i := 0; i < 40; i++ {
			p = append(p, Point{ID: i, Coords: []float64{
				float64(rng.Intn(20)), float64(rng.Intn(20)), float64(rng.Intn(20)),
			}})
		}
		front := Front(p)
		inFront := make(map[int]bool)
		for _, i := range front {
			inFront[i] = true
		}
		// Front members must not dominate each other.
		for _, i := range front {
			for _, j := range front {
				if i != j && Dominates(p[i].Coords, p[j].Coords) {
					return false
				}
			}
		}
		// Every non-member must be dominated by some member.
		for i := range p {
			if inFront[i] {
				continue
			}
			dominated := false
			for _, j := range front {
				if Dominates(p[j].Coords, p[i].Coords) {
					dominated = true
					break
				}
			}
			if !dominated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectEqualWeightsEuclid(t *testing.T) {
	// Normalized coords: {0,1}, {1,0}, {0.5,0.5}: the balanced point wins
	// under Euclid (0.707 < 1).
	p := pts([]float64{0, 10}, []float64{10, 0}, []float64{5, 5})
	i, err := Select(p, nil, Euclid)
	if err != nil {
		t.Fatal(err)
	}
	if i != 2 {
		t.Fatalf("selected %d, want balanced point 2", i)
	}
}

func TestSelectWeightsShiftChoice(t *testing.T) {
	p := pts([]float64{0, 10}, []float64{10, 0}, []float64{5, 5})
	// Heavy weight on dimension 0 favors the point with minimum dim-0.
	i, err := Select(p, []float64{10, 0.1}, Euclid)
	if err != nil {
		t.Fatal(err)
	}
	if i != 0 {
		t.Fatalf("selected %d, want dim-0-minimal point 0", i)
	}
}

func TestSelectNorms(t *testing.T) {
	p := pts([]float64{0, 10}, []float64{10, 0}, []float64{4, 4})
	for _, n := range []Norm{Euclid, Manhattan, Chebyshev} {
		i, err := Select(p, nil, n)
		if err != nil {
			t.Fatal(err)
		}
		if i != 2 {
			t.Fatalf("%v: selected %d, want 2", n, i)
		}
		if n.String() == "" {
			t.Fatal("empty norm name")
		}
	}
}

func TestSelectErrors(t *testing.T) {
	if _, err := Select(nil, nil, Euclid); err == nil {
		t.Error("empty selection accepted")
	}
	p := pts([]float64{1, 2})
	if _, err := Select(p, []float64{1}, Euclid); err == nil {
		t.Error("weight/dim mismatch accepted")
	}
}

func TestSelectDegenerateDimension(t *testing.T) {
	// A dimension with zero range must not produce NaNs.
	p := pts([]float64{3, 1}, []float64{3, 2})
	i, err := Select(p, nil, Euclid)
	if err != nil {
		t.Fatal(err)
	}
	if i != 0 {
		t.Fatalf("selected %d, want 0", i)
	}
}

func TestProjectAndSameFront(t *testing.T) {
	p := pts([]float64{1, 2, 9}, []float64{3, 4, 7})
	pr := Project(p, 0, 1)
	if len(pr[0].Coords) != 2 || pr[0].Coords[1] != 2 || pr[1].Coords[0] != 3 {
		t.Fatalf("bad projection %+v", pr)
	}
	a := pts([]float64{1, 2}, []float64{3, 4})
	b := pts([]float64{3, 4}, []float64{1, 2})
	if !SameFront(a, b, 1e-9) {
		t.Error("order-insensitive equality failed")
	}
	c := pts([]float64{3, 4}, []float64{1, 2.5})
	if SameFront(a, c, 1e-9) {
		t.Error("different fronts reported equal")
	}
	if SameFront(a, pts([]float64{1, 2}), 1e-9) {
		t.Error("different sizes reported equal")
	}
}

func TestSortByDim(t *testing.T) {
	p := pts([]float64{3, 0}, []float64{1, 0}, []float64{2, 0})
	SortByDim(p, 0)
	if p[0].Coords[0] != 1 || p[2].Coords[0] != 3 {
		t.Fatalf("sort broken: %+v", p)
	}
}

// naiveFront is the reference O(n²) all-pairs implementation Front was
// optimized from; the property test below pins the two to identical
// output (members and order) on adversarial inputs.
func naiveFront(points []Point) []int {
	var out []int
	for i := range points {
		dominated := false
		for j := range points {
			if i != j && Dominates(points[j].Coords, points[i].Coords) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

func TestFrontMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(120)
		dims := 1 + rng.Intn(4)
		// A tiny value alphabet forces heavy first-dimension ties and
		// exact duplicate vectors — the cases the presort and the
		// duplicate-run fast path must get right.
		vals := 1 + rng.Intn(4)
		p := make([]Point, n)
		for i := range p {
			c := make([]float64, dims)
			for d := range c {
				c[d] = float64(rng.Intn(vals))
			}
			p[i] = Point{ID: i, Coords: c}
		}
		got, want := Front(p), naiveFront(p)
		if len(got) != len(want) {
			return false
		}
		for k := range got {
			if got[k] != want[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFrontAllDuplicates(t *testing.T) {
	// Identical vectors never dominate each other: all are kept, in input
	// order, and the duplicate-run fast path must not loop over them.
	var p []Point
	for i := 0; i < 50; i++ {
		p = append(p, Point{ID: i, Coords: []float64{2, 3}})
	}
	f := Front(p)
	if len(f) != 50 {
		t.Fatalf("front size %d, want all 50 duplicates", len(f))
	}
	for k, i := range f {
		if i != k {
			t.Fatalf("front order broken at %d: %v", k, f)
		}
	}
}

func TestFrontEmptyAndSingle(t *testing.T) {
	if f := Front(nil); f != nil {
		t.Fatalf("empty input: %v", f)
	}
	if f := Front(pts([]float64{1, 2})); len(f) != 1 || f[0] != 0 {
		t.Fatalf("single point: %v", f)
	}
}

func TestFrontProjectionRelationship(t *testing.T) {
	// The key structural fact behind the paper's figure 8: lifting points
	// into a higher dimension can only grow the front, never lose a
	// lower-dimensional front member. Projections of the lifted front onto
	// the original plane must contain the original front.
	rng := rand.New(rand.NewSource(5))
	var p2, p3 []Point
	for i := 0; i < 30; i++ {
		a := float64(rng.Intn(50))
		b := float64(rng.Intn(50))
		c := float64(rng.Intn(50))
		p2 = append(p2, Point{ID: i, Coords: []float64{a, b}})
		p3 = append(p3, Point{ID: i, Coords: []float64{a, b, c}})
	}
	f2 := map[int]bool{}
	for _, i := range Front(p2) {
		f2[p2[i].ID] = true
	}
	f3 := map[int]bool{}
	for _, i := range Front(p3) {
		f3[p3[i].ID] = true
	}
	for id := range f2 {
		if !f3[id] {
			t.Fatalf("2-D front member %d missing from 3-D front", id)
		}
	}
}
