// Package pareto provides k-dimensional Pareto-front extraction and the
// weighted-norm selection used to pick the final architecture from the
// area / execution-time / test-cost space (the paper's section 4: "any of
// the standard weighted norm techniques within the vector space R^3").
// All objectives are minimized.
//
// Coordinate policy: NaN is not a legal objective value — NaN
// comparisons are non-transitive, so a single NaN coordinate can make
// dominance intransitive and silently corrupt a front. Callers feeding
// externally produced values must reject NaN at the Point boundary with
// ValidateCoords; StreamingFront enforces the policy itself. ±Inf is
// legal (IEEE comparisons against infinities stay total and
// transitive).
package pareto

import (
	"fmt"
	"math"
	"sort"
)

// Point is one candidate in objective space.
type Point struct {
	ID     int
	Coords []float64
}

// Dominates reports whether a dominates b: a is no worse in every
// dimension and strictly better in at least one.
func Dominates(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// Front returns the indices (into points) of the non-dominated set, in
// input order. Duplicate coordinate vectors are all kept.
//
// Points are presorted lexicographically (first dimension as the primary
// key, stable), which restricts the domination scan: a point can only be
// dominated by points preceding it in that order, so each point compares
// against its sorted prefix instead of the whole set, already-dominated
// prefix members are skipped (domination is transitive, and a dominator
// always sorts earlier), and runs of duplicate coordinate vectors decide
// their status once and share it.
func Front(points []Point) []int {
	n := len(points)
	if n == 0 {
		return nil
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return lexLess(points[order[a]].Coords, points[order[b]].Coords)
	})
	dominated := make([]bool, n)
	for pos, i := range order {
		if pos > 0 {
			prev := order[pos-1]
			// Equal vectors never dominate each other, so the first of a
			// duplicate run answers for the whole run.
			if equalCoords(points[prev].Coords, points[i].Coords) {
				dominated[i] = dominated[prev]
				continue
			}
		}
		for _, j := range order[:pos] {
			if dominated[j] {
				continue
			}
			if Dominates(points[j].Coords, points[i].Coords) {
				dominated[i] = true
				break
			}
		}
	}
	var out []int
	for i := range points {
		if !dominated[i] {
			out = append(out, i)
		}
	}
	return out
}

// lexLess orders coordinate vectors lexicographically; a shorter vector
// that is a prefix of a longer one sorts first.
func lexLess(a, b []float64) bool {
	m := len(a)
	if len(b) < m {
		m = len(b)
	}
	for d := 0; d < m; d++ {
		if a[d] != b[d] {
			return a[d] < b[d]
		}
	}
	return len(a) < len(b)
}

// equalCoords reports exact coordinate-vector equality.
func equalCoords(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for d := range a {
		if a[d] != b[d] {
			return false
		}
	}
	return true
}

// Project drops all but the listed dimensions from each point.
func Project(points []Point, dims ...int) []Point {
	out := make([]Point, len(points))
	for i, p := range points {
		c := make([]float64, len(dims))
		for k, d := range dims {
			c[k] = p.Coords[d]
		}
		out[i] = Point{ID: p.ID, Coords: c}
	}
	return out
}

// Norm selects the scalarization used for selection.
type Norm uint8

// Selection norms.
const (
	// Euclid is the L2 norm over normalized coordinates (the paper's
	// choice, with equal weights).
	Euclid Norm = iota
	// Manhattan is the L1 norm.
	Manhattan
	// Chebyshev is the L∞ norm.
	Chebyshev
)

func (n Norm) String() string {
	switch n {
	case Euclid:
		return "euclid"
	case Manhattan:
		return "manhattan"
	case Chebyshev:
		return "chebyshev"
	default:
		return fmt.Sprintf("Norm(%d)", uint8(n))
	}
}

// Select returns the index of the point minimizing the weighted norm over
// min-max normalized coordinates. Weights express "the significance of a
// constraint over other constraints"; equal weights reproduce the paper's
// selection. Ties break toward the lower index (deterministic).
func Select(points []Point, weights []float64, norm Norm) (int, error) {
	if len(points) == 0 {
		return -1, fmt.Errorf("pareto: no points to select from")
	}
	dims := len(points[0].Coords)
	if weights == nil {
		weights = make([]float64, dims)
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != dims {
		return -1, fmt.Errorf("pareto: %d weights for %d dimensions", len(weights), dims)
	}
	lo := make([]float64, dims)
	hi := make([]float64, dims)
	copy(lo, points[0].Coords)
	copy(hi, points[0].Coords)
	for _, p := range points {
		if len(p.Coords) != dims {
			return -1, fmt.Errorf("pareto: inconsistent dimensionality")
		}
		for d, v := range p.Coords {
			if v < lo[d] {
				lo[d] = v
			}
			if v > hi[d] {
				hi[d] = v
			}
		}
	}
	best := -1
	bestVal := math.Inf(1)
	for i, p := range points {
		acc := 0.0
		worst := 0.0
		for d, v := range p.Coords {
			nv := 0.0
			if hi[d] > lo[d] {
				nv = (v - lo[d]) / (hi[d] - lo[d])
			}
			w := weights[d] * nv
			switch norm {
			case Manhattan:
				acc += math.Abs(w)
			case Chebyshev:
				if math.Abs(w) > worst {
					worst = math.Abs(w)
				}
			default:
				acc += w * w
			}
		}
		val := acc
		if norm == Chebyshev {
			val = worst
		} else if norm == Euclid {
			val = math.Sqrt(acc)
		}
		if val < bestVal {
			bestVal = val
			best = i
		}
	}
	return best, nil
}

// SortByDim orders points ascending in the given dimension (stable;
// useful for printing fronts as curves).
func SortByDim(points []Point, dim int) {
	sort.SliceStable(points, func(a, b int) bool {
		return points[a].Coords[dim] < points[b].Coords[dim]
	})
}

// SameFront reports whether two fronts (as coordinate sets) are equal up
// to ordering and eps tolerance — used to check the paper's claim that the
// 3-D front's area-time projection preserves the 2-D front.
func SameFront(a, b []Point, eps float64) bool {
	if len(a) != len(b) {
		return false
	}
	used := make([]bool, len(b))
	for _, pa := range a {
		found := false
		for j, pb := range b {
			if used[j] || len(pa.Coords) != len(pb.Coords) {
				continue
			}
			match := true
			for d := range pa.Coords {
				if math.Abs(pa.Coords[d]-pb.Coords[d]) > eps {
					match = false
					break
				}
			}
			if match {
				used[j] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
