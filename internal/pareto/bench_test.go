package pareto

import (
	"math/rand"
	"testing"
)

// benchPoints builds a reproducible 3-D candidate stream with front
// churn: coordinates drift downward over time, so later points keep
// evicting earlier front members — the live-exploration access pattern.
func benchPoints(n int) []Point {
	rng := rand.New(rand.NewSource(11))
	out := make([]Point, n)
	for i := range out {
		decay := float64(n-i) / float64(n)
		out[i] = Point{ID: i, Coords: []float64{
			decay*500 + float64(rng.Intn(200)),
			decay*500 + float64(rng.Intn(200)),
			decay*500 + float64(rng.Intn(200)),
		}}
	}
	return out
}

// BenchmarkStreamingInsert measures absorbing one candidate stream into
// the incremental archive — the daemon's per-completion cost.
func BenchmarkStreamingInsert(b *testing.B) {
	points := benchPoints(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := NewStreamingFront(3)
		for _, p := range points {
			f.Insert(p)
		}
	}
}

// BenchmarkBatchRescan measures the pre-StreamingFront /front cost
// model: re-running the batch Front over every point seen so far on
// each poll (here one poll per 100 completions — far fewer polls than a
// live dashboard would issue, and it still loses by orders of
// magnitude at depth).
func BenchmarkBatchRescan(b *testing.B) {
	points := benchPoints(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for seen := 100; seen <= len(points); seen += 100 {
			Front(points[:seen])
		}
	}
}

// BenchmarkStreamingSnapshot measures answering one /front poll from
// the archive: O(front), independent of the 10000 inserted points.
func BenchmarkStreamingSnapshot(b *testing.B) {
	f := NewStreamingFront(3)
	for _, p := range benchPoints(10000) {
		f.Insert(p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Points()
	}
}
