package pareto_test

import (
	"fmt"

	"repro/internal/pareto"
)

// ExampleFront extracts the non-dominated set of a small design space.
func ExampleFront() {
	points := []pareto.Point{
		{ID: 0, Coords: []float64{1, 9}}, // cheap but slow
		{ID: 1, Coords: []float64{5, 5}}, // balanced
		{ID: 2, Coords: []float64{9, 1}}, // fast but big
		{ID: 3, Coords: []float64{6, 6}}, // dominated by 1
	}
	for _, i := range pareto.Front(points) {
		fmt.Println(points[i].ID)
	}
	// Output:
	// 0
	// 1
	// 2
}

// ExampleSelect picks the balanced compromise with the paper's
// equal-weight Euclidean norm.
func ExampleSelect() {
	points := []pareto.Point{
		{ID: 0, Coords: []float64{1, 9}},
		{ID: 1, Coords: []float64{5, 5}},
		{ID: 2, Coords: []float64{9, 1}},
	}
	best, _ := pareto.Select(points, nil, pareto.Euclid)
	fmt.Println(points[best].ID)
	// Output:
	// 1
}
