// StreamingFront: an incremental dominance archive. Where Front answers
// "which of these n points are non-dominated" in one batch pass,
// StreamingFront absorbs points one at a time — the shape of a live
// exploration, where candidates finish in arbitrary order across a
// worker pool — and keeps exactly the non-dominated subset at every
// moment. Membership queries and snapshots are O(front), independent of
// how many points were ever inserted, which is what makes a live /front
// endpoint viable during a million-candidate run.
//
// The archive is kept sorted lexicographically. Dominance in a
// minimization space is order-compatible with that sort: a dominator of
// p sorts strictly before p, and every point p dominates sorts strictly
// after it. Each insert therefore scans the sorted prefix for a
// dominator (early exit) and the suffix for evictions, so the cost is
// O(front) comparisons with small constants, not O(all-inserted).
//
// Coordinate policy: NaN coordinates are rejected with an error at the
// boundary (see ValidateCoords) — NaN comparisons are non-transitive
// and would silently corrupt the archive's invariant. ±Inf is accepted;
// IEEE comparisons against infinities are total and transitive, so an
// infinite objective behaves like any other very bad (or very good)
// value.
package pareto

import (
	"sort"
	"sync"
)

// StreamingFront is an incremental k-dimensional dominance archive over
// minimized objectives. The zero value is NOT usable; construct with
// NewStreamingFront. All methods are safe for concurrent use; concurrent
// inserts serialize internally, and the final archive is independent of
// insertion order (see the package property tests).
type StreamingFront struct {
	mu   sync.Mutex
	dims int
	// members is the current non-dominated set, sorted lexicographically
	// by coordinates with ties broken by ascending ID — a deterministic
	// total order, so two archives over the same point set are deeply
	// equal regardless of arrival order.
	members []Point

	inserts   int64 // accepted insertions (archive grew)
	rejects   int64 // dominated on arrival (archive unchanged)
	evictions int64 // members removed by a later dominator
}

// NewStreamingFront returns an empty archive for dims-dimensional
// points (dims >= 1).
func NewStreamingFront(dims int) *StreamingFront {
	if dims < 1 {
		dims = 1
	}
	return &StreamingFront{dims: dims}
}

// Insert offers one point to the archive. It returns accepted=false when
// an existing member dominates p (the archive is unchanged), and
// otherwise accepted=true plus the IDs of any members p evicted.
// Duplicate coordinate vectors never dominate each other, so duplicates
// of a non-dominated vector are all kept — exactly Front's convention.
// A NaN coordinate or a dimensionality mismatch is rejected with an
// error and leaves the archive unchanged.
func (f *StreamingFront) Insert(p Point) (accepted bool, evicted []int, err error) {
	if err := ValidateCoords(p.Coords); err != nil {
		return false, nil, err
	}
	if len(p.Coords) != f.dims {
		return false, nil, &CoordError{Reason: "dimensionality", Dim: len(p.Coords)}
	}
	f.mu.Lock()
	defer f.mu.Unlock()

	// pos is where p would sit in the sorted archive.
	pos := sort.Search(len(f.members), func(i int) bool {
		return !memberLess(f.members[i], p)
	})
	// A dominator sorts strictly before p: scan the prefix.
	for i := pos - 1; i >= 0; i-- {
		if Dominates(f.members[i].Coords, p.Coords) {
			f.rejects++
			return false, nil, nil
		}
	}
	// Everything p dominates sorts strictly after it: scan the suffix,
	// compacting survivors in place.
	keep := f.members[:pos]
	for _, m := range f.members[pos:] {
		if Dominates(p.Coords, m.Coords) {
			evicted = append(evicted, m.ID)
			continue
		}
		keep = append(keep, m)
	}
	f.members = keep
	f.evictions += int64(len(evicted))

	// Insert p at its sorted position (pos is still correct: no survivor
	// before it moved, and suffix survivors only shifted left).
	f.members = append(f.members, Point{})
	copy(f.members[pos+1:], f.members[pos:])
	c := make([]float64, f.dims)
	copy(c, p.Coords)
	f.members[pos] = Point{ID: p.ID, Coords: c}
	f.inserts++
	return true, evicted, nil
}

// memberLess is the archive's total order: lexicographic by coordinates,
// then ascending ID.
func memberLess(a, b Point) bool {
	if lexLess(a.Coords, b.Coords) {
		return true
	}
	if lexLess(b.Coords, a.Coords) {
		return false
	}
	return a.ID < b.ID
}

// Size reports the current archive size (the live front's cardinality).
func (f *StreamingFront) Size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.members)
}

// Stats reports the lifetime counters: accepted insertions, arrivals
// rejected as dominated, and members evicted by later dominators.
func (f *StreamingFront) Stats() (inserts, rejects, evictions int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.inserts, f.rejects, f.evictions
}

// IDs returns the archive members' IDs in ascending order — the stable
// candidate-index ordering snapshots are keyed by.
func (f *StreamingFront) IDs() []int {
	f.mu.Lock()
	out := make([]int, len(f.members))
	for i, m := range f.members {
		out[i] = m.ID
	}
	f.mu.Unlock()
	sort.Ints(out)
	return out
}

// Points returns a copy of the archive in its internal (lexicographic)
// order. The copy shares nothing with the archive.
func (f *StreamingFront) Points() []Point {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Point, len(f.members))
	for i, m := range f.members {
		c := make([]float64, len(m.Coords))
		copy(c, m.Coords)
		out[i] = Point{ID: m.ID, Coords: c}
	}
	return out
}

// CoordError reports a coordinate vector rejected at the Point boundary:
// a NaN coordinate, or (for StreamingFront) a dimensionality mismatch.
type CoordError struct {
	Reason string
	Dim    int
}

func (e *CoordError) Error() string {
	if e.Reason == "dimensionality" {
		return "pareto: wrong coordinate dimensionality"
	}
	return "pareto: NaN coordinate in dimension " + itoa(e.Dim)
}

// itoa avoids pulling strconv in for one error path.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [24]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// ValidateCoords enforces the package's coordinate policy at the Point
// boundary: NaN is rejected (NaN comparisons are non-transitive, so one
// NaN objective would silently poison any dominance computation); ±Inf
// is accepted (IEEE comparisons against infinities are total and
// transitive). Callers feeding external data into Front, Select or
// StreamingFront should validate each vector once, here.
func ValidateCoords(coords []float64) error {
	for d, v := range coords {
		if v != v { // NaN
			return &CoordError{Reason: "nan", Dim: d}
		}
	}
	return nil
}
