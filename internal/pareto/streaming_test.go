package pareto

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
)

// batchFrontIDs computes the reference answer with the batch scan.
func batchFrontIDs(points []Point) []int {
	idx := Front(points)
	ids := make([]int, len(idx))
	for i, pi := range idx {
		ids[i] = points[pi].ID
	}
	sort.Ints(ids)
	return ids
}

// streamIDs pushes points through a StreamingFront in the given order.
func streamIDs(t *testing.T, dims int, points []Point, order []int) []int {
	t.Helper()
	f := NewStreamingFront(dims)
	for _, i := range order {
		if _, _, err := f.Insert(points[i]); err != nil {
			t.Fatalf("insert %v: %v", points[i], err)
		}
	}
	ids := f.IDs()
	if len(ids) != f.Size() {
		t.Fatalf("IDs() length %d != Size() %d", len(ids), f.Size())
	}
	return ids
}

// TestStreamingMatchesBatchAnyOrder is the satellite property test: over
// random point sets (2-D and 3-D, with deliberate duplicate coordinate
// vectors and discrete values that collide often), the streaming archive
// equals the batch front for every sampled insertion order.
func TestStreamingMatchesBatchAnyOrder(t *testing.T) {
	for _, dims := range []int{2, 3} {
		for seed := int64(0); seed < 30; seed++ {
			rng := rand.New(rand.NewSource(seed*100 + int64(dims)))
			n := 5 + rng.Intn(60)
			points := make([]Point, n)
			for i := range points {
				c := make([]float64, dims)
				for d := range c {
					c[d] = float64(rng.Intn(8)) // small range: many ties/dups
				}
				points[i] = Point{ID: i, Coords: c}
			}
			want := batchFrontIDs(points)
			order := make([]int, n)
			for i := range order {
				order[i] = i
			}
			for trial := 0; trial < 5; trial++ {
				rng.Shuffle(n, func(a, b int) { order[a], order[b] = order[b], order[a] })
				got := streamIDs(t, dims, points, order)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("dims=%d seed=%d trial=%d: stream %v != batch %v\npoints: %v",
						dims, seed, trial, got, want, points)
				}
			}
		}
	}
}

// TestStreamingArchiveDeepEqualAcrossOrders checks the stronger claim
// the snapshot path relies on: not just the same ID set but deeply equal
// archives (member order and coordinates) regardless of arrival order.
func TestStreamingArchiveDeepEqualAcrossOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 40
	points := make([]Point, n)
	for i := range points {
		points[i] = Point{ID: i, Coords: []float64{
			float64(rng.Intn(6)), float64(rng.Intn(6)), float64(rng.Intn(6)),
		}}
	}
	var ref []Point
	for trial := 0; trial < 8; trial++ {
		order := rng.Perm(n)
		f := NewStreamingFront(3)
		for _, i := range order {
			if _, _, err := f.Insert(points[i]); err != nil {
				t.Fatal(err)
			}
		}
		got := f.Points()
		if trial == 0 {
			ref = got
			continue
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("trial %d: archive differs across insertion orders:\n%v\n%v", trial, got, ref)
		}
	}
}

// TestStreamingEvictions exercises the insert contract directly.
func TestStreamingEvictions(t *testing.T) {
	f := NewStreamingFront(2)
	mustInsert := func(id int, x, y float64) (bool, []int) {
		t.Helper()
		acc, ev, err := f.Insert(Point{ID: id, Coords: []float64{x, y}})
		if err != nil {
			t.Fatal(err)
		}
		return acc, ev
	}
	if acc, _ := mustInsert(0, 5, 5); !acc {
		t.Fatal("first insert must be accepted")
	}
	if acc, _ := mustInsert(1, 6, 6); acc {
		t.Fatal("dominated arrival must be rejected")
	}
	if acc, _ := mustInsert(2, 5, 5); !acc {
		t.Fatal("duplicate of a front member must be kept (Front convention)")
	}
	acc, ev := mustInsert(3, 4, 4)
	if !acc {
		t.Fatal("dominating arrival must be accepted")
	}
	sort.Ints(ev)
	if !reflect.DeepEqual(ev, []int{0, 2}) {
		t.Fatalf("evicted %v, want [0 2] (both duplicates)", ev)
	}
	if got := f.IDs(); !reflect.DeepEqual(got, []int{3}) {
		t.Fatalf("front IDs %v, want [3]", got)
	}
	ins, rej, evc := f.Stats()
	if ins != 3 || rej != 1 || evc != 2 {
		t.Fatalf("stats = %d/%d/%d, want 3/1/2", ins, rej, evc)
	}
}

// TestCoordPolicyNaN: the boundary rejects NaN with a typed error and
// leaves the archive unchanged — in every dimension position.
func TestCoordPolicyNaN(t *testing.T) {
	nan := math.NaN()
	if err := ValidateCoords([]float64{1, 2, 3}); err != nil {
		t.Fatalf("finite coords rejected: %v", err)
	}
	for d := 0; d < 3; d++ {
		c := []float64{1, 2, 3}
		c[d] = nan
		err := ValidateCoords(c)
		var ce *CoordError
		if !errors.As(err, &ce) {
			t.Fatalf("NaN in dim %d: got %v, want *CoordError", d, err)
		}
		if ce.Dim != d {
			t.Errorf("NaN in dim %d reported as dim %d", d, ce.Dim)
		}
	}
	f := NewStreamingFront(2)
	if _, _, err := f.Insert(Point{ID: 0, Coords: []float64{1, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Insert(Point{ID: 1, Coords: []float64{nan, 0}}); err == nil {
		t.Fatal("NaN insert must error")
	}
	if _, _, err := f.Insert(Point{ID: 2, Coords: []float64{1}}); err == nil {
		t.Fatal("dimensionality mismatch must error")
	}
	if got := f.IDs(); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("rejected inserts must leave the archive unchanged: %v", got)
	}
}

// TestCoordPolicyInf: ±Inf is a legal (transitively comparable)
// objective value, for both the streaming archive and the batch scan.
func TestCoordPolicyInf(t *testing.T) {
	inf := math.Inf(1)
	if err := ValidateCoords([]float64{inf, math.Inf(-1)}); err != nil {
		t.Fatalf("±Inf must pass validation: %v", err)
	}
	points := []Point{
		{ID: 0, Coords: []float64{1, inf}},  // front: best x
		{ID: 1, Coords: []float64{2, 5}},    // front
		{ID: 2, Coords: []float64{2, inf}},  // dominated by 1 (and 0)
		{ID: 3, Coords: []float64{inf, 1}},  // front: best y
		{ID: 4, Coords: []float64{inf, inf}}, // dominated by everything finite-ish
	}
	want := batchFrontIDs(points)
	got := streamIDs(t, 2, points, []int{4, 2, 0, 3, 1})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Inf handling: stream %v != batch %v", got, want)
	}
	if !reflect.DeepEqual(want, []int{0, 1, 3}) {
		t.Fatalf("batch front over Inf points = %v, want [0 1 3]", want)
	}
}

// TestStreamingConcurrentInserts is the -race stress: many goroutines
// hammer one archive; afterwards it must equal the batch front of the
// union, and the counters must balance.
func TestStreamingConcurrentInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 2000
	points := make([]Point, n)
	for i := range points {
		points[i] = Point{ID: i, Coords: []float64{
			float64(rng.Intn(50)), float64(rng.Intn(50)), float64(rng.Intn(50)),
		}}
	}
	f := NewStreamingFront(3)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				if _, _, err := f.Insert(points[i]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	want := batchFrontIDs(points)
	if got := f.IDs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("concurrent archive %v != batch %v", got, want)
	}
	ins, rej, evc := f.Stats()
	if ins-evc != int64(f.Size()) {
		t.Fatalf("counter imbalance: inserts %d - evictions %d != size %d", ins, evc, f.Size())
	}
	if ins+rej != n {
		t.Fatalf("inserts %d + rejects %d != %d arrivals", ins, rej, n)
	}
}
