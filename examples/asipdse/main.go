// Asipdse shows why the exploration is *application specific*: three
// kernels with different operation mixes (bit-serial CRC, a comparison
// tree, a streaming checksum) are scheduled across the same architecture
// family, and their resource sensitivities and selected designs diverge.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/dse"
	"repro/internal/program"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/testcost"
	"repro/internal/tta"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)

	crc, err := workloads.CRC16(2, 0x40)
	if err != nil {
		log.Fatal(err)
	}
	cb, err := workloads.CountBelow(12)
	if err != nil {
		log.Fatal(err)
	}
	cs, err := workloads.Checksum(8, 0x40)
	if err != nil {
		log.Fatal(err)
	}

	// Resource sensitivity: cycles on 1 vs 2 ALUs / CMPs.
	tbl := report.NewTable("Kernel resource sensitivity (cycles)",
		"kernel", "mix", "base", "+1 ALU", "+1 CMP")
	base := buildArch(1, 1)
	moreALU := buildArch(2, 1)
	moreCMP := buildArch(1, 2)
	for _, g := range []*program.Graph{crc, cb, cs} {
		st := g.Stats()
		mix := fmt.Sprintf("alu=%d cmp=%d ld=%d", st.ALU, st.CMP, st.Loads)
		tbl.AddRow(g.Name, mix, cycles(g, base), cycles(g, moreALU), cycles(g, moreCMP))
	}
	fmt.Print(tbl.String())
	fmt.Println()

	// Per-application test-aware exploration.
	ann := testcost.NewAnnotator(16, 7)
	sel := report.NewTable("Per-application selection (equal-weight norm)",
		"kernel", "selected architecture", "area", "exec time", "test cost")
	for _, g := range []*program.Graph{crc, cb, cs} {
		cfg, err := dse.DefaultConfig()
		if err != nil {
			log.Fatal(err)
		}
		cfg.Workload = g
		cfg.WorkloadReps = 1000
		cfg.Buses = []int{2, 3}
		cfg.ALUCounts = []int{1, 2}
		cfg.CMPCounts = []int{1, 2}
		cfg.RFSets = cfg.RFSets[3:4]
		cfg.Assigns = []tta.AssignStrategy{tta.SpreadFirst}
		cfg.Annotator = ann
		res, err := dse.Explore(cfg)
		if err != nil {
			log.Fatal(err)
		}
		c := res.Candidates[res.Selected]
		sel.AddRow(g.Name, c.Arch.String(), c.Area, c.ExecTime, c.TestCost)
	}
	fmt.Print(sel.String())
}

func buildArch(alus, cmps int) *tta.Architecture {
	a := &tta.Architecture{Name: fmt.Sprintf("a%dc%d", alus, cmps), Width: 16, Buses: 3}
	for i := 0; i < alus; i++ {
		a.Components = append(a.Components, tta.NewFU(tta.ALU, fmt.Sprintf("ALU%d", i+1)))
	}
	for i := 0; i < cmps; i++ {
		a.Components = append(a.Components, tta.NewFU(tta.CMP, fmt.Sprintf("CMP%d", i+1)))
	}
	a.Components = append(a.Components,
		tta.NewRF("RF1", 12, 1, 2), tta.NewRF("RF2", 12, 1, 2),
		tta.NewFU(tta.LDST, "LD/ST"), tta.NewPC("PC"), tta.NewIMM("Immediate"))
	tta.AssignPorts(a, tta.SpreadFirst)
	return a
}

func cycles(g *program.Graph, a *tta.Architecture) int {
	res, err := sched.ScheduleContext(context.Background(), g, a, sched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	return res.Cycles
}
