// Vliwtest demonstrates the paper's section-3.2 extension to bus-oriented
// VLIW ASIP templates (figure 7): when components reach the bus only
// through other components, the functional test must follow a dependency
// order, and indirect access paths make each pattern more expensive.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/atpg"
	"repro/internal/gatelib"
	"repro/internal/report"
	"repro/internal/vliw"
)

func main() {
	ctx := context.Background()
	log.SetFlags(0)

	// Back-annotate realistic pattern counts from the gate-level library
	// (the execution units are ALUs; the RF uses its march count scale).
	lib := gatelib.NewLibrary()
	alu, err := lib.ALU(gatelib.ALUConfig{Width: 16, Adder: gatelib.AdderRipple})
	if err != nil {
		log.Fatal(err)
	}
	resEU, err := atpg.RunContext(ctx, alu.Seq, atpg.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	npEU := resEU.NumPatterns()
	fmt.Printf("execution-unit pattern count (from ATPG): %d\n\n", npEU)

	tbl := report.NewTable("Figure 7 extension: VLIW test-order exploration",
		"template", "order", "cost [cycles]", "naive order", "naive cost", "penalty")
	for _, n := range []int{2, 3, 4} {
		t := vliw.Figure7(n, npEU, 80, 60)
		opt, order, err := t.OptimalCost()
		if err != nil {
			log.Fatal(err)
		}
		worst, rev, err := t.WorstCost()
		if err != nil {
			log.Fatal(err)
		}
		tbl.AddRow(t.Name, names(t, order), opt, names(t, rev), worst,
			fmt.Sprintf("+%.0f%%", 100*float64(worst-opt)/float64(opt)))
	}
	fmt.Print(tbl.String())
	fmt.Println("\nThe dependency-respecting order tests directly attached units first;")
	fmt.Println("a naive order pays pattern re-application through untested hops.")
}

func names(t *vliw.Template, order []int) string {
	s := ""
	for i, c := range order {
		if i > 0 {
			s += ">"
		}
		s += t.Components[c].Name
	}
	return s
}
