// Rtlcosim demonstrates the deepest validation tier of the reproduction:
// the TTA datapath is assembled gate by gate from the component library
// (function units with O/T/R registers, register files, bus multiplexers),
// a scheduled move program is driven into it as per-cycle control signals,
// and the register-file contents after execution are compared against the
// behavioural simulator and the dataflow reference. Three independent
// models of the same machine, one answer.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/crypt"
	"repro/internal/gatelib"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/rtl"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/tta"
)

func main() {
	ctx := context.Background()
	log.SetFlags(0)

	arch := &tta.Architecture{
		Name: "cosim", Width: 16, Buses: 2,
		Components: []tta.Component{
			tta.NewFU(tta.ALU, "ALU"),
			tta.NewFU(tta.CMP, "CMP"),
			tta.NewRF("RF1", 8, 1, 2),
			tta.NewRF("RF2", 12, 1, 1),
			tta.NewFU(tta.LDST, "LD/ST"),
			tta.NewPC("PC"),
			tta.NewIMM("Immediate"),
		},
	}
	tta.AssignPorts(arch, tta.SpreadFirst)

	fmt.Println("assembling the gate-level datapath...")
	m, err := rtl.Build(arch, gatelib.NewLibrary())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s\n\n", m.Stats())

	// A slice of the real crypt round: two S-box lookups with key mixing.
	g := program.NewGraph("feistel_slice", 16)
	rhi := g.In()
	rlo := g.In()
	khi := g.In()
	c := func(v uint64) program.ValueID { return g.ConstV(v) }
	xhi := g.Or(g.Srl(rhi, c(1)), g.Sll(rlo, c(15)))
	chunk0 := g.Srl(xhi, c(10))
	chunk1 := g.And(g.Srl(xhi, c(6)), c(63))
	idx0 := g.Xor(chunk0, g.Srl(khi, c(10)))
	idx1 := g.Xor(chunk1, g.And(g.Srl(khi, c(4)), c(63)))
	v0 := g.Load(g.Add(c(crypt.SPHiBase), idx0))
	v1 := g.Load(g.Add(c(crypt.SPHiBase+64), idx1))
	g.Output(g.Xor(v0, v1))

	res, err := sched.ScheduleContext(ctx, g, arch, sched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	inputs := []uint64{0xB3B6, 0xA08E, 0x1357}

	ref, err := program.Evaluate(g, inputs, crypt.MemoryImage())
	if err != nil {
		log.Fatal(err)
	}
	memB := crypt.MemoryImage()
	behav, err := sim.Run(res, inputs, memB, sim.Options{Verify: true})
	if err != nil {
		log.Fatal(err)
	}
	memR := map[uint64]uint64{}
	for k, v := range crypt.MemoryImage() {
		memR[k] = v
	}
	gates, err := m.RunSchedule(res, inputs, memR)
	if err != nil {
		log.Fatal(err)
	}

	// Tier 4: encode to instruction words and run them through the
	// gate-level socket-ID decoder in front of the same datapath.
	prog, err := isa.Encode(res)
	if err != nil {
		log.Fatal(err)
	}
	dec, err := rtl.BuildDecoded(m)
	if err != nil {
		log.Fatal(err)
	}
	inLoc, outLoc := rtl.SeedsOf(res)
	memD := map[uint64]uint64{}
	for k, v := range crypt.MemoryImage() {
		memD[k] = v
	}
	decoded, err := dec.RunWords(prog, inLoc, inputs, outLoc, memD)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload    : %s (%v)\n", g.Name, g.Stats())
	fmt.Printf("schedule    : %d cycles, %d moves; %d words x %d bits\n",
		res.Cycles, len(res.Moves), len(prog.Words), prog.Format.InstrBits())
	fmt.Printf("reference   : %#04x   (dataflow evaluator)\n", ref[0])
	fmt.Printf("behavioural : %#04x   (move-by-move TTA simulator)\n", behav[0])
	fmt.Printf("gate level  : %#04x   (%d gates, %d clock cycles)\n",
		gates[0], m.Stats().Gates, m.Cycles)
	fmt.Printf("decoded bin : %#04x   (raw words through a %d-gate socket decoder)\n",
		decoded[0], dec.Dec.Stats().Gates)
	if ref[0] == behav[0] && behav[0] == gates[0] && gates[0] == decoded[0] {
		fmt.Println("\nall four tiers agree.")
	} else {
		log.Fatal("TIER MISMATCH")
	}
}
