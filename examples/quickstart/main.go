// Quickstart: build the paper's figure-9 TTA, evaluate its three design
// axes — circuit area, execution time of the Crypt round kernel, and the
// analytical test cost — and compare the functional test against full
// scan. This is the smallest end-to-end use of the library's API.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/crypt"
	"repro/internal/sched"
	"repro/internal/testcost"
	"repro/internal/tta"
)

func main() {
	ctx := context.Background()
	log.SetFlags(0)

	// 1. An architecture: the paper's selected template (figure 9).
	arch := tta.Figure9()
	fmt.Println("architecture:", arch)

	// 2. Throughput: schedule the Crypt DES-round kernel onto it.
	kernel, err := crypt.BuildRoundKernel(1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sched.ScheduleContext(ctx, kernel, arch, sched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule    : %d cycles per DES round, %d moves on %d buses\n",
		res.Cycles, len(res.Moves), arch.Buses)
	fmt.Printf("per hash    : ~%d cycles (25 DES iterations x 16 rounds)\n",
		crypt.HashCycles(res.Cycles))

	// 3. Test cost: back-annotate pattern counts from the gate-level
	// library and evaluate equations (11)-(14).
	ann := testcost.NewAnnotator(arch.Width, 7)
	cost, err := ann.Evaluate(arch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test cost   : %d cycles functional vs %d cycles full scan (%.1fx)\n",
		cost.Total, cost.FullScanTotal, float64(cost.FullScanTotal)/float64(cost.Total))

	// 4. The full Table-1 breakdown.
	tbl, err := core.Table1For(ann, arch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(tbl.String())
}
