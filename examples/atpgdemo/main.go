// Atpgdemo walks through the test generation substrate on the 16-bit ALU:
// fault universe construction, the random+PODEM ATPG flow, scan-chain
// insertion, and an actual scan-based application of the first generated
// pattern — shifting it through the chain, capturing, and shifting the
// response out. It then contrasts the full-scan cycle count with the
// functional application the paper advocates.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/atpg"
	"repro/internal/gatelib"
	"repro/internal/scan"
)

func main() {
	ctx := context.Background()
	log.SetFlags(0)

	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 16, Adder: gatelib.AdderRipple})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ALU netlist: %s\n", alu.Seq.Stats())

	// 1. ATPG on the full-scan view (O/T/R registers are bus-accessible in
	// a TTA, so the same view is the functional one).
	u := atpg.NewUniverse(alu.Seq)
	fmt.Printf("fault universe: %d collapsed of %d raw (%.0f%%)\n",
		len(u.Faults), u.Uncollapsed, 100*u.CollapseRatio())
	res, err := atpg.RunContext(ctx, alu.Seq, atpg.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ATPG: %s\n", res)

	// 2. Insert a scan chain and actually run one pattern through it.
	ins, err := scan.Insert(alu.Seq)
	if err != nil {
		log.Fatal(err)
	}
	h, err := scan.NewHarness(ins)
	if err != nil {
		log.Fatal(err)
	}
	nl := scan.ChainLength(ins.N)
	pat := res.Patterns[0]
	// The pattern's flip-flop section (after the primary inputs).
	ffBits := make([]uint8, nl)
	copy(ffBits, pat[len(alu.Seq.PIs):])
	h.ShiftIn(ffBits)
	h.Capture()
	response := h.ChainState()
	ones := 0
	for _, b := range response {
		ones += int(b)
	}
	fmt.Printf("scan demo: shifted %d bits in, captured, shifted out (%d response bits set)\n",
		nl, ones)

	// 3. The cost comparison that motivates the paper.
	scanCycles := scan.TestCycles(res.NumPatterns(), nl)
	functional := res.NumPatterns() * 3 // CD = 3, eq. (9)
	fmt.Printf("\napplying all %d patterns:\n", res.NumPatterns())
	fmt.Printf("  full scan : %d cycles (%d shift cycles per pattern)\n", scanCycles, nl)
	fmt.Printf("  functional: %d cycles (3 transport cycles per pattern)\n", functional)
	fmt.Printf("  advantage : %.1fx fewer cycles, zero extra DfT area (scan adds %.1f NAND2-eq)\n",
		float64(scanCycles)/float64(functional), scan.AreaOverhead(alu.Seq))
}
