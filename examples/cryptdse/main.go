// Cryptdse reproduces the complete flow of the paper's section 4 on the
// Crypt application: explore the design space (figure 2), lift the Pareto
// front into the area/time/test-cost space (figure 8), select the best
// architecture with the equal-weight Euclidean norm (figure 9), and print
// the Table-1 comparison for the winner. It also demonstrates that the
// winner really computes crypt(3): the scheduled kernel is simulated move
// by move and checked against the software DES.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/crypt"
	"repro/internal/sched"
	"repro/internal/sim"
)

func main() {
	ctx := context.Background()
	log.SetFlags(0)

	study, err := core.NewStudy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("exploring the Crypt design space (this runs gate-level ATPG once per component)...")
	if err := study.ExploreContext(ctx); err != nil {
		log.Fatal(err)
	}

	plot2, err := study.Figure2Plot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(plot2)

	f8, err := study.Figure8Table()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(f8.String())
	fmt.Println()

	summary, err := study.Summary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(summary)
	fmt.Println()

	tbl, err := study.Table1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tbl.String())
	fmt.Println()

	// Prove the selected architecture actually runs the workload: schedule
	// one DES round, simulate it with full value verification and compare
	// against the software implementation.
	arch := study.SelectedArchitecture()
	kernel, err := crypt.BuildRoundKernel(1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sched.ScheduleContext(ctx, kernel, arch, sched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ks := crypt.KeySchedule(crypt.KeyFromPassword("password"))
	out, err := sim.Run(res, crypt.KernelInputs(0, 0, ks[:1]), crypt.MemoryImage(), sim.Options{Verify: true})
	if err != nil {
		log.Fatal(err)
	}
	gl, gr := crypt.KernelOutputs(out)
	wl, wr := crypt.GoldenRounds(0, 0, ks[:1])
	if gl != wl || gr != wr {
		log.Fatalf("selected architecture miscomputed the round: (%08X,%08X) vs (%08X,%08X)", gl, gr, wl, wr)
	}
	fmt.Printf("verification: one DES round simulated on %s in %d cycles — matches software DES\n",
		arch.Name, res.Cycles)
	h, err := crypt.Hash("password", "ab")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crypt(\"password\", \"ab\") = %s\n", h)
}
